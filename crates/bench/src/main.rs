//! `cpla-bench`: end-to-end pipeline benchmark comparing the legacy and
//! incremental CPLA evaluation pipelines on a synthetic ISPD-like
//! workload, emitting machine-readable JSON (stats are hand-serialized —
//! the toolchain is hermetic, no serde).
//!
//! ```text
//! cargo run --release -p cpla-bench -- --threads 4 --nets 400
//! ```
//!
//! Flags (all optional): `--seed N`, `--nets N`, `--size WxH`,
//! `--layers N`, `--capacity N`, `--threads N`, `--ratio F`,
//! `--rounds N`, `--mode both|legacy|incremental`,
//! `--solve-backend both|per-leaf|batched` (Solve-stage execution
//! shape; `both` benches the full mode × backend matrix),
//! `--trace <file.jsonl>` (per-stage JSON-lines trace),
//! `--alloc-stats` (per-span allocation accounting),
//! `--trace-chrome <file.json>` (Chrome `trace_event` span dump for
//! `chrome://tracing`/Perfetto), `--metrics <file.txt>` (Prometheus
//! text dump), `--bench-json <file|none>` (per-stage p50/p95 baseline,
//! default `BENCH_cpla.json`), `--preset scale-100k|scale-1m` (fix the
//! design to a scale-generator config, overriding the design flags),
//! `--compare-threads N` (additionally run the first enabled cell at
//! 1 and N threads and record the wall ratio under `thread_scaling`).

use std::fs::File;
use std::io::{BufWriter, Write};
use std::time::Instant;

use cpla::{Cpla, CplaConfig, CplaReport, PipelineMode, PipelineStats};
use flow::{RoundSnapshot, SolveBackend, Stage, StageObserver};
use grid::Grid;
use ispd::SyntheticConfig;
use net::{Assignment, Netlist};
use obs::Recorder;
use route::{initial_assignment, route_netlist, RouterConfig};

/// Counting allocator so `--alloc-stats` can attribute bytes to spans;
/// counting stays disabled (one relaxed load per call) without the flag.
#[global_allocator]
static ALLOC: obs::CountingAlloc = obs::CountingAlloc::new();

/// A [`StageObserver`] that appends one JSON object per stage boundary
/// and per round to a file — the machine-readable counterpart of
/// watching the pipeline run. Hand-serialized like the summary JSON
/// (the toolchain is hermetic, no serde).
struct JsonlTrace {
    out: BufWriter<File>,
    /// Pipeline label stamped on every record.
    mode: &'static str,
    /// Repetition index stamped on every record.
    rep: usize,
}

impl JsonlTrace {
    fn create(path: &str) -> JsonlTrace {
        let file = File::create(path).unwrap_or_else(|e| {
            eprintln!("cannot create trace file {path}: {e}");
            std::process::exit(2);
        });
        JsonlTrace {
            out: BufWriter::new(file),
            mode: "",
            rep: 0,
        }
    }

    fn write(&mut self, record: String) {
        writeln!(self.out, "{record}").unwrap_or_else(|e| {
            eprintln!("trace write failed: {e}");
            std::process::exit(2);
        });
    }
}

impl StageObserver for JsonlTrace {
    fn on_stage_start(&mut self, round: usize, stage: Stage) {
        let record = format!(
            "{{\"event\":\"stage_start\",\"mode\":\"{}\",\"rep\":{},\
             \"round\":{},\"stage\":\"{}\"}}",
            self.mode,
            self.rep,
            round,
            stage.name(),
        );
        self.write(record);
    }

    fn on_stage_end(&mut self, round: usize, stage: Stage, seconds: f64) {
        let record = format!(
            "{{\"event\":\"stage_end\",\"mode\":\"{}\",\"rep\":{},\
             \"round\":{},\"stage\":\"{}\",\"seconds\":{:.6}}}",
            self.mode,
            self.rep,
            round,
            stage.name(),
            seconds,
        );
        self.write(record);
    }

    fn on_round_end(&mut self, snapshot: &RoundSnapshot) {
        let c = snapshot.counters;
        let record = format!(
            "{{\"event\":\"round_end\",\"mode\":\"{}\",\"rep\":{},\
             \"round\":{},\"objective\":{:.6},\"improved\":{},\
             \"partitions_solved\":{},\"partitions_reused\":{},\
             \"evaluations\":{},\"gate_accepted\":{},\"gate_rejected\":{}}}",
            self.mode,
            self.rep,
            snapshot.round,
            snapshot.objective,
            snapshot.improved,
            c.partitions_solved,
            c.partitions_reused,
            c.evaluations,
            c.gate_accepted,
            c.gate_rejected,
        );
        self.write(record);
    }
}

#[derive(Clone)]
struct Args {
    seed: u64,
    nets: usize,
    width: u16,
    height: u16,
    layers: usize,
    capacity: u32,
    threads: usize,
    ratio: f64,
    rounds: usize,
    reps: usize,
    mode: String,
    solve_backend: String,
    trace: Option<String>,
    alloc_stats: bool,
    trace_chrome: Option<String>,
    metrics: Option<String>,
    bench_json: Option<String>,
    /// Scale-generator config name; fixes the design fields.
    preset: Option<String>,
    /// Also run the first enabled cell at 1 and N threads and record
    /// the wall ratio.
    compare_threads: Option<usize>,
    /// Extra `LayerAssigner` backends to row up against the CPLA matrix
    /// (`tila`, `lagrange`, `greedy`, `race`). Only the stdout summary
    /// gains an `assigners` object; the baseline-checked
    /// `BENCH_cpla.json` is untouched, so CI diffs stay stable.
    assigners: Vec<String>,
}

impl Default for Args {
    fn default() -> Args {
        Args {
            seed: 42,
            nets: 400,
            width: 48,
            height: 48,
            layers: 6,
            capacity: 6,
            threads: 4,
            ratio: 0.05,
            rounds: 8,
            reps: 3,
            mode: "both".to_string(),
            solve_backend: "both".to_string(),
            trace: None,
            alloc_stats: false,
            trace_chrome: None,
            metrics: None,
            bench_json: Some("BENCH_cpla.json".to_string()),
            preset: None,
            compare_threads: None,
            assigners: Vec::new(),
        }
    }
}

fn parse_args() -> Args {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--seed" => args.seed = value("--seed").parse().unwrap(),
            "--nets" => args.nets = value("--nets").parse().unwrap(),
            "--size" => {
                let v = value("--size");
                let (w, h) = v.split_once('x').unwrap_or_else(|| {
                    eprintln!("--size expects WxH, got {v}");
                    std::process::exit(2);
                });
                args.width = w.parse().unwrap();
                args.height = h.parse().unwrap();
            }
            "--layers" => args.layers = value("--layers").parse().unwrap(),
            "--capacity" => args.capacity = value("--capacity").parse().unwrap(),
            "--threads" => args.threads = value("--threads").parse().unwrap(),
            "--ratio" => args.ratio = value("--ratio").parse().unwrap(),
            "--rounds" => args.rounds = value("--rounds").parse().unwrap(),
            "--reps" => args.reps = value("--reps").parse().unwrap(),
            "--mode" => args.mode = value("--mode"),
            "--solve-backend" => {
                let v = value("--solve-backend");
                if !matches!(v.as_str(), "both" | "per-leaf" | "batched") {
                    eprintln!("--solve-backend expects both|per-leaf|batched, got {v}");
                    std::process::exit(2);
                }
                args.solve_backend = v;
            }
            "--trace" => args.trace = Some(value("--trace")),
            "--alloc-stats" => args.alloc_stats = true,
            "--trace-chrome" => args.trace_chrome = Some(value("--trace-chrome")),
            "--metrics" => args.metrics = Some(value("--metrics")),
            "--bench-json" => {
                let v = value("--bench-json");
                args.bench_json = (v != "none").then_some(v);
            }
            "--preset" => {
                let v = value("--preset");
                if SyntheticConfig::scale(&v).is_none() {
                    eprintln!("--preset expects scale-100k|scale-1m, got {v}");
                    std::process::exit(2);
                }
                args.preset = Some(v);
            }
            "--compare-threads" => {
                args.compare_threads = Some(value("--compare-threads").parse().unwrap())
            }
            "--assigners" => {
                let v = value("--assigners");
                for name in v.split(',').filter(|s| !s.is_empty()) {
                    if !matches!(name, "tila" | "lagrange" | "greedy" | "race") {
                        eprintln!("--assigners expects tila|lagrange|greedy|race (comma-separated), got {name}");
                        std::process::exit(2);
                    }
                    if !args.assigners.iter().any(|a| a == name) {
                        args.assigners.push(name.to_string());
                    }
                }
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: cpla-bench [--seed N] [--nets N] [--size WxH] \
                     [--layers N] [--capacity N] [--threads N] [--ratio F] \
                     [--rounds N] [--reps N] \
                     [--mode both|legacy|incremental] \
                     [--solve-backend both|per-leaf|batched] \
                     [--trace file.jsonl] \
                     [--alloc-stats] [--trace-chrome file.json] \
                     [--metrics file.txt] [--bench-json file|none] \
                     [--preset scale-100k|scale-1m] [--compare-threads N] \
                     [--assigners tila,lagrange,greedy,race]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    args
}

struct RunOutcome {
    wall_secs: f64,
    report: CplaReport,
    /// Span tree of the fastest repetition.
    recorder: Recorder,
    /// Peak live heap bytes (RSS proxy) over the fastest repetition;
    /// zero unless `--alloc-stats`.
    peak_alloc_bytes: u64,
    /// Final wire overflow of the optimized assignment.
    wire_overflow: u64,
}

#[allow(clippy::too_many_arguments)]
fn run_mode(
    args: &Args,
    mode: PipelineMode,
    solve_backend: SolveBackend,
    label: &'static str,
    grid: &Grid,
    netlist: &Netlist,
    assignment: &Assignment,
    trace: Option<&mut JsonlTrace>,
) -> RunOutcome {
    let config = CplaConfig {
        critical_ratio: args.ratio,
        max_rounds: args.rounds,
        threads: args.threads,
        mode,
        solve_backend,
        alloc_stats: args.alloc_stats,
        ..CplaConfig::default()
    };
    let mut trace = trace;
    // The engine is deterministic per mode, so repetitions only differ
    // in scheduler noise: report the minimum wall time.
    let mut best: Option<RunOutcome> = None;
    for rep in 0..args.reps.max(1) {
        let mut grid = grid.clone();
        let mut assignment = assignment.clone();
        let mut recorder = Recorder::new(label);
        obs::alloc::reset_peak();
        let mut observers: Vec<&mut dyn flow::StageObserver> = Vec::new();
        if let Some(t) = trace.as_deref_mut() {
            t.mode = label;
            t.rep = rep;
            observers.push(t);
        }
        observers.push(&mut recorder);
        let start = Instant::now();
        // invariant: the synthetic workload and CLI-derived config are
        // well-formed; a flow error here is a harness bug.
        let report = Cpla::new(config)
            .run_observed(&mut grid, netlist, &mut assignment, &mut observers)
            .expect("benchmark workload is well-formed");
        let wall_secs = start.elapsed().as_secs_f64();
        recorder.finish();
        let peak_alloc_bytes = obs::alloc::peak_bytes();
        let wire_overflow = grid.total_wire_overflow();
        if best.as_ref().is_none_or(|b| wall_secs < b.wall_secs) {
            best = Some(RunOutcome {
                wall_secs,
                report,
                recorder,
                peak_alloc_bytes,
                wire_overflow,
            });
        }
    }
    best.expect("at least one repetition")
}

/// One `--assigners` row: the named backend run through the
/// `LayerAssigner` seam on the same routed workload the CPLA matrix
/// used; minimum wall time over `--reps` repetitions, like `run_mode`.
fn run_assigner(
    args: &Args,
    name: &str,
    grid: &Grid,
    netlist: &Netlist,
    assignment: &Assignment,
) -> String {
    let make = || -> Box<dyn flow::LayerAssigner> {
        let solve_backend = if args.solve_backend == "batched" {
            SolveBackend::Batched
        } else {
            SolveBackend::PerLeaf
        };
        match name {
            "tila" => Box::new(conform::tila_backend(args.ratio)),
            "lagrange" => Box::new(conform::lagrange_backend(args.ratio)),
            "greedy" => Box::new(conform::greedy_backend(args.ratio)),
            // invariant: parse_args rejected every other name.
            _ => Box::new(conform::race_backend(
                args.ratio,
                args.threads,
                solve_backend,
            )),
        }
    };
    let mut best: Option<(f64, flow::FlowReport, u64, u64)> = None;
    for _ in 0..args.reps.max(1) {
        let mut grid = grid.clone();
        let mut assignment = assignment.clone();
        let start = Instant::now();
        // invariant: the synthetic workload and ratio are well-formed;
        // a flow error here is a harness bug.
        let report = make()
            .assign(&mut grid, netlist, &mut assignment)
            .expect("benchmark workload is well-formed");
        let wall_secs = start.elapsed().as_secs_f64();
        let wire = grid.total_wire_overflow();
        let via = grid.total_via_overflow();
        if best.as_ref().is_none_or(|b| wall_secs < b.0) {
            best = Some((wall_secs, report, wire, via));
        }
    }
    let (wall_secs, report, wire, via) = best.expect("at least one repetition");
    format!(
        "\"{name}\":{{\"wall_secs\":{:.6},\"winner\":\"{}\",\
         \"avg_tcp_initial\":{:.6},\"avg_tcp_final\":{:.6},\
         \"max_tcp_final\":{:.6},\"wire_overflow\":{wire},\
         \"via_overflow\":{via},\"rounds\":{},\"released\":{}}}",
        wall_secs,
        report.assigner,
        report.initial_metrics.avg_tcp,
        report.final_metrics.avg_tcp,
        report.final_metrics.max_tcp,
        report.rounds,
        report.released.len(),
    )
}

fn json_stats(s: &PipelineStats) -> String {
    format!(
        "{{\"context_secs\":{:.6},\"partition_secs\":{:.6},\
         \"extract_secs\":{:.6},\"solve_secs\":{:.6},\"apply_secs\":{:.6},\
         \"metrics_secs\":{:.6},\"rounds\":{},\"partitions_solved\":{},\
         \"partitions_reused\":{},\"cache_hit_rate\":{:.4},\
         \"evaluations\":{},\"gate_accepted\":{},\"gate_rejected\":{},\
         \"batch_sweeps\":{},\"batch_retired_early\":{}}}",
        s.context_secs,
        s.partition_secs,
        s.extract_secs,
        s.solve_secs,
        s.apply_secs,
        s.metrics_secs,
        s.rounds,
        s.partitions_solved,
        s.partitions_reused,
        s.cache_hit_rate(),
        s.evaluations,
        s.gate_accepted,
        s.gate_rejected,
        s.batch_sweeps,
        s.batch_retired_early,
    )
}

fn json_run(o: &RunOutcome) -> String {
    format!(
        "{{\"wall_secs\":{:.6},\"avg_tcp_initial\":{:.6},\
         \"avg_tcp_final\":{:.6},\"max_tcp_final\":{:.6},\"rounds\":{},\
         \"released\":{},\"stats\":{}}}",
        o.wall_secs,
        o.report.initial_metrics.avg_tcp,
        o.report.final_metrics.avg_tcp,
        o.report.final_metrics.max_tcp,
        o.report.rounds.len(),
        o.report.released.len(),
        json_stats(&o.report.stats),
    )
}

/// Per-mode entry of `BENCH_cpla.json`: run-level quality/cost numbers
/// plus the per-stage p50/p95 wall and allocation rollup.
/// `peak_alloc_bytes` is `null` unless `--alloc-stats` actually
/// measured it — a literal 0 would read as "measured, allocated
/// nothing", which is never true.
fn json_bench_mode(o: &RunOutcome, alloc_stats: bool) -> String {
    let stages = obs::summarize(&o.recorder)
        .iter()
        .map(|s| {
            format!(
                "\"{}\":{{\"rounds\":{},\"wall_total_secs\":{:.6},\
                 \"wall_p50_secs\":{:.6},\"wall_p95_secs\":{:.6},\
                 \"alloc_bytes\":{},\"alloc_events\":{},\"leaves\":{}}}",
                s.stage.name(),
                s.samples,
                s.wall_total_secs,
                s.wall_p50_secs,
                s.wall_p95_secs,
                s.alloc_bytes,
                s.alloc_events,
                s.leaves,
            )
        })
        .collect::<Vec<_>>()
        .join(",");
    format!(
        "{{\"wall_secs\":{:.6},\"avg_tcp_initial\":{:.6},\
         \"avg_tcp_final\":{:.6},\"max_tcp_final\":{:.6},\
         \"via_overflow\":{},\"via_count\":{},\"wire_overflow\":{},\
         \"rounds\":{},\"released\":{},\"peak_alloc_bytes\":{},\
         \"solve_secs\":{:.6},\"batch_sweeps\":{},\
         \"batch_retired_early\":{},\"stages\":{{{}}}}}",
        o.wall_secs,
        o.report.initial_metrics.avg_tcp,
        o.report.final_metrics.avg_tcp,
        o.report.final_metrics.max_tcp,
        o.report.final_metrics.via_overflow,
        o.report.final_metrics.via_count,
        o.wire_overflow,
        o.report.rounds.len(),
        o.report.released.len(),
        if alloc_stats {
            o.peak_alloc_bytes.to_string()
        } else {
            "null".to_string()
        },
        o.report.stats.solve_secs,
        o.report.stats.batch_sweeps,
        o.report.stats.batch_retired_early,
        stages,
    )
}

/// The whole `BENCH_cpla.json` document. Stage *keys* are the stable
/// contract (CI diffs them against the committed baseline); the numeric
/// values are a trajectory, expected to drift run to run.
fn json_bench(args: &Args, modes: &[(&str, &RunOutcome)], thread_scaling: Option<&str>) -> String {
    let mode_objs = modes
        .iter()
        .map(|(label, o)| format!("\"{label}\":{}", json_bench_mode(o, args.alloc_stats)))
        .collect::<Vec<_>>()
        .join(",");
    format!(
        "{{\n\"schema\":2,\n\"design\":{{\"seed\":{},\"nets\":{},\"width\":{},\
         \"height\":{},\"layers\":{},\"capacity\":{},\"preset\":{}}},\n\
         \"threads\":{},\"reps\":{},\"ratio\":{},\"rounds\":{},\
         \"alloc_stats\":{},\"solve_backend\":\"{}\",\
         \"thread_scaling\":{},\n\"modes\":{{{}}}\n}}\n",
        args.seed,
        args.nets,
        args.width,
        args.height,
        args.layers,
        args.capacity,
        args.preset
            .as_deref()
            .map_or("null".to_string(), |p| format!("\"{p}\"")),
        args.threads,
        args.reps,
        args.ratio,
        args.rounds,
        args.alloc_stats,
        args.solve_backend,
        thread_scaling.unwrap_or("null"),
        mode_objs,
    )
}

fn write_artifact(path: &str, what: &str, contents: &str) {
    std::fs::write(path, contents).unwrap_or_else(|e| {
        eprintln!("cannot write {what} {path}: {e}");
        std::process::exit(2);
    });
}

fn main() {
    let mut args = parse_args();

    // A preset pins the whole design shape (including pin-count and
    // locality distributions the individual flags can't express); the
    // design flags are folded back into `args` so every emitted JSON
    // reflects the actual workload.
    let cfg = match &args.preset {
        Some(name) => {
            // invariant: parse_args rejected unknown preset names.
            let p = SyntheticConfig::scale(name).expect("preset validated at parse time");
            args.seed = p.seed;
            args.nets = p.num_nets;
            args.width = p.width;
            args.height = p.height;
            args.layers = p.layers;
            args.capacity = p.capacity;
            p
        }
        None => {
            let mut cfg = SyntheticConfig::small(args.seed);
            cfg.name = format!("bench-{}", args.seed);
            cfg.width = args.width;
            cfg.height = args.height;
            cfg.layers = args.layers;
            cfg.num_nets = args.nets;
            cfg.capacity = args.capacity;
            cfg
        }
    };
    let (mut grid, specs) = cfg.generate().expect("synthetic design");
    let netlist = route_netlist(&grid, &specs, &RouterConfig::default());
    let assignment = initial_assignment(&mut grid, &netlist);
    eprintln!(
        "design {}: {} nets routed to {} segments",
        cfg.name,
        netlist.len(),
        netlist.num_segments(),
    );

    let mut trace = args.trace.as_deref().map(JsonlTrace::create);

    // The bench matrix: pipeline mode × solve backend. Per-leaf cells
    // keep their historical labels; batched cells are suffixed so the
    // baseline diff in CI treats them as distinct entries.
    let mode_on = |m: &str| args.mode == "both" || args.mode == m;
    let backend_on = |b: &str| args.solve_backend == "both" || args.solve_backend == b;
    let cell_on = |mode: PipelineMode, backend: SolveBackend| {
        let m = match mode {
            PipelineMode::Legacy => "legacy",
            PipelineMode::Incremental => "incremental",
        };
        mode_on(m) && backend_on(backend.name())
    };
    let cells: [(&'static str, PipelineMode, SolveBackend); 4] = [
        ("legacy", PipelineMode::Legacy, SolveBackend::PerLeaf),
        (
            "incremental",
            PipelineMode::Incremental,
            SolveBackend::PerLeaf,
        ),
        (
            "legacy+batched",
            PipelineMode::Legacy,
            SolveBackend::Batched,
        ),
        (
            "incremental+batched",
            PipelineMode::Incremental,
            SolveBackend::Batched,
        ),
    ];
    let outcomes: Vec<(&'static str, RunOutcome)> = cells
        .into_iter()
        .filter(|&(_, mode, backend)| cell_on(mode, backend))
        .map(|(label, mode, backend)| {
            (
                label,
                run_mode(
                    &args,
                    mode,
                    backend,
                    label,
                    &grid,
                    &netlist,
                    &assignment,
                    trace.as_mut(),
                ),
            )
        })
        .collect();
    let find = |label: &str| outcomes.iter().find(|(l, _)| *l == label).map(|(_, o)| o);
    let legacy = find("legacy");
    let incremental = find("incremental");

    if let Some(t) = trace.as_mut() {
        t.out.flush().unwrap_or_else(|e| {
            eprintln!("trace flush failed: {e}");
            std::process::exit(2);
        });
    }

    // --compare-threads: rerun the first enabled cell at 1 and N
    // threads (fresh runs so the matrix cells above stay comparable)
    // and record the wall ratio. This is the shard-scaling evidence the
    // scale presets exist to collect.
    let thread_scaling = args.compare_threads.map(|n| {
        let (label, mode, backend) = cells
            .into_iter()
            .find(|&(_, mode, backend)| cell_on(mode, backend))
            .unwrap_or(cells[1]);
        let run_at = |threads: usize| {
            let mut a = args.clone();
            a.threads = threads;
            run_mode(&a, mode, backend, label, &grid, &netlist, &assignment, None)
        };
        let base = run_at(1);
        let scaled = run_at(n.max(1));
        format!(
            "{{\"cell\":\"{label}\",\"threads\":{},\
             \"wall_threads1_secs\":{:.6},\"wall_secs\":{:.6},\
             \"ratio\":{:.4}}}",
            n.max(1),
            base.wall_secs,
            scaled.wall_secs,
            scaled.wall_secs / base.wall_secs.max(1e-12),
        )
    });

    let modes: Vec<(&str, &RunOutcome)> = outcomes.iter().map(|(l, o)| (*l, o)).collect();
    let recorders: Vec<&Recorder> = modes.iter().map(|(_, o)| &o.recorder).collect();
    if let Some(path) = &args.trace_chrome {
        write_artifact(path, "chrome trace", &obs::chrome::export(&recorders));
    }
    if let Some(path) = &args.metrics {
        write_artifact(path, "metrics dump", &obs::prom::export(&recorders));
    }
    if let Some(path) = &args.bench_json {
        write_artifact(
            path,
            "bench baseline",
            &json_bench(&args, &modes, thread_scaling.as_deref()),
        );
    }

    let mut fields = vec![format!(
        "\"design\":{{\"seed\":{},\"nets\":{},\"width\":{},\"height\":{},\
         \"layers\":{},\"capacity\":{}}},\"threads\":{}",
        args.seed, args.nets, args.width, args.height, args.layers, args.capacity, args.threads,
    )];
    for (label, o) in &outcomes {
        fields.push(format!("\"{label}\":{}", json_run(o)));
    }
    if let (Some(l), Some(i)) = (legacy, incremental) {
        fields.push(format!(
            "\"speedup\":{:.3}",
            l.wall_secs / i.wall_secs.max(1e-12)
        ));
    }
    if let Some(ts) = &thread_scaling {
        fields.push(format!("\"thread_scaling\":{ts}"));
    }
    // `--assigners`: cross-backend rows on the identical routed input.
    // Stdout-only on purpose — BENCH_cpla.json is diffed against a
    // committed baseline whose key set must not depend on this flag.
    if !args.assigners.is_empty() {
        let rows: Vec<String> = args
            .assigners
            .iter()
            .map(|name| run_assigner(&args, name, &grid, &netlist, &assignment))
            .collect();
        fields.push(format!("\"assigners\":{{{}}}", rows.join(",")));
    }
    // The backend comparison the batched path exists for: Solve+PostMap
    // wall of the batched cell over its per-leaf twin, per mode.
    for (per_leaf_label, batched_label, key) in [
        ("legacy", "legacy+batched", "batched_solve_ratio_legacy"),
        (
            "incremental",
            "incremental+batched",
            "batched_solve_ratio_incremental",
        ),
    ] {
        if let (Some(p), Some(b)) = (find(per_leaf_label), find(batched_label)) {
            fields.push(format!(
                "\"{key}\":{:.3}",
                b.report.stats.solve_secs / p.report.stats.solve_secs.max(1e-12)
            ));
        }
    }
    println!("{{{}}}", fields.join(","));
}
