//! Dependency-free deterministic pseudo-random numbers.
//!
//! The repository must build and test with no network access, so nothing
//! here may come from crates.io. This crate provides the one PRNG the
//! workspace needs: a [`Rng`] built on xoshiro256** seeded through
//! splitmix64 — the textbook construction (Blackman & Vigna) with good
//! statistical quality, a 256-bit state and sub-nanosecond steps.
//!
//! Streams are **stable**: the sequence produced by a given seed is part
//! of this crate's contract, because synthetic benchmarks
//! (`ispd::SyntheticConfig`) derive their designs from it and experiment
//! results must be reproducible across sessions.
//!
//! # Example
//!
//! ```
//! use prng::Rng;
//!
//! let mut rng = Rng::seed_from_u64(42);
//! let a = rng.range_u32(0, 10); // inclusive bounds
//! assert!(a <= 10);
//! let p = rng.f64();
//! assert!((0.0..1.0).contains(&p));
//! // Same seed, same stream.
//! assert_eq!(Rng::seed_from_u64(7).u64(), Rng::seed_from_u64(7).u64());
//! ```

/// Expands a 64-bit seed into well-mixed state words (splitmix64).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// A deterministic xoshiro256** generator.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator whose stream is a pure function of `seed`.
    pub fn seed_from_u64(seed: u64) -> Rng {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // xoshiro's all-zero state is absorbing; splitmix64 cannot
        // produce four zero outputs in a row, but guard anyway.
        if s == [0; 4] {
            s[0] = 0x9E3779B97F4A7C15;
        }
        Rng { s }
    }

    /// Next raw 64-bit output.
    pub fn u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Next 32-bit output (upper half of [`Rng::u64`]).
    pub fn u32(&mut self) -> u32 {
        (self.u64() >> 32) as u32
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn f64(&mut self) -> f64 {
        (self.u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn bool(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Uniform integer in `[lo, hi]`, both bounds inclusive.
    ///
    /// Uses Lemire's multiply-shift rejection method, so the result is
    /// exactly uniform.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range {lo}..={hi}");
        let span = hi - lo;
        if span == u64::MAX {
            return self.u64();
        }
        let s = span + 1;
        // Rejection sampling on the top bits: unbiased for any span.
        let zone = u64::MAX - (u64::MAX - s + 1) % s;
        loop {
            let v = self.u64();
            if v <= zone {
                return lo + v % s;
            }
        }
    }

    /// Uniform integer in `[lo, hi]` as `u32`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range_u32(&mut self, lo: u32, hi: u32) -> u32 {
        self.range_u64(lo as u64, hi as u64) as u32
    }

    /// Uniform integer in `[lo, hi]` as `u16`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range_u16(&mut self, lo: u16, hi: u16) -> u16 {
        self.range_u64(lo as u64, hi as u64) as u16
    }

    /// Uniform integer in `[lo, hi]` as `usize`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.range_u64(lo as u64, hi as u64) as usize
    }

    /// Uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or a bound is not finite.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo.is_finite() && hi.is_finite() && lo <= hi);
        lo + self.f64() * (hi - lo)
    }

    /// Derives an independent generator for a labelled sub-stream.
    ///
    /// Consumes one word of this generator's stream and mixes it with
    /// `label` through splitmix64, so forks are deterministic (same
    /// parent state + same label → same child stream) yet statistically
    /// decoupled from the parent and from forks with other labels.
    /// Fuzzers use this to give every trial its own stream without the
    /// trials' draw counts interfering with one another.
    pub fn fork(&mut self, label: u64) -> Rng {
        let mut sm = self
            .u64()
            .wrapping_add(label.wrapping_mul(0xA24BAED4963EE407));
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        if s == [0; 4] {
            s[0] = 0x9E3779B97F4A7C15;
        }
        Rng { s }
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.range_usize(0, i);
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::seed_from_u64(123);
        let mut b = Rng::seed_from_u64(123);
        for _ in 0..100 {
            assert_eq!(a.u64(), b.u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.u64() == b.u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn stream_is_stable() {
        // The stream is a contract: synthetic benchmarks depend on it.
        let mut r = Rng::seed_from_u64(0);
        assert_eq!(r.u64(), 11091344671253066420);
        assert_eq!(r.u64(), 13793997310169335082);
        assert_eq!(r.u64(), 1900383378846508768);
    }

    #[test]
    fn range_is_inclusive_and_in_bounds() {
        let mut r = Rng::seed_from_u64(9);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..2000 {
            let v = r.range_u64(3, 7);
            assert!((3..=7).contains(&v));
            seen_lo |= v == 3;
            seen_hi |= v == 7;
        }
        assert!(seen_lo && seen_hi);
        // Degenerate range.
        assert_eq!(r.range_u64(5, 5), 5);
        // Full range must not loop forever.
        let _ = r.range_u64(0, u64::MAX);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::seed_from_u64(11);
        let mut sum = 0.0;
        for _ in 0..4096 {
            let v = r.f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 4096.0;
        assert!((mean - 0.5).abs() < 0.03, "mean {mean}");
    }

    #[test]
    fn bool_tracks_probability() {
        let mut r = Rng::seed_from_u64(13);
        let hits = (0..10_000).filter(|_| r.bool(0.3)).count();
        let frac = hits as f64 / 10_000.0;
        assert!((frac - 0.3).abs() < 0.03, "{frac}");
        assert!(!(0..100).any(|_| r.bool(0.0)));
        assert!((0..100).all(|_| r.bool(1.0)));
    }

    #[test]
    fn uniformity_over_small_range() {
        let mut r = Rng::seed_from_u64(17);
        let mut counts = [0u32; 5];
        for _ in 0..50_000 {
            counts[r.range_usize(0, 4)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 600.0, "{counts:?}");
        }
    }

    #[test]
    fn forks_are_deterministic_and_decoupled() {
        let mut a = Rng::seed_from_u64(5);
        let mut b = Rng::seed_from_u64(5);
        let mut fa = a.fork(7);
        let mut fb = b.fork(7);
        for _ in 0..32 {
            assert_eq!(fa.u64(), fb.u64());
        }
        // Different labels from identical parents diverge.
        let mut c = Rng::seed_from_u64(5);
        let mut fc = c.fork(8);
        let same = (0..64).filter(|_| fa.u64() == fc.u64()).count();
        assert_eq!(same, 0);
        // The parent advanced by exactly one word per fork.
        let mut p = Rng::seed_from_u64(5);
        let _ = p.u64();
        assert_eq!(a.u64(), p.u64());
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Rng::seed_from_u64(21);
        let mut v: Vec<u32> = (0..32).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
        assert_ne!(v, (0..32).collect::<Vec<_>>(), "shuffle moved nothing");
    }
}
