//! Collections of nets and global segment addressing.

use crate::Net;

/// Address of one segment within a [`Netlist`]: net index + segment index
/// inside that net's tree.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct SegmentRef {
    /// Net index within the netlist.
    pub net: u32,
    /// Segment index within the net's tree.
    pub seg: u32,
}

impl SegmentRef {
    /// Creates a segment reference.
    pub fn new(net: u32, seg: u32) -> SegmentRef {
        SegmentRef { net, seg }
    }
}

/// An ordered collection of [`Net`]s — the design under optimization.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct Netlist {
    nets: Vec<Net>,
}

impl Netlist {
    /// Creates an empty netlist.
    pub fn new() -> Netlist {
        Netlist { nets: Vec::new() }
    }

    /// Appends a net, returning its index.
    pub fn push(&mut self, net: Net) -> usize {
        self.nets.push(net);
        self.nets.len() - 1
    }

    /// All nets.
    pub fn nets(&self) -> &[Net] {
        &self.nets
    }

    /// The net with index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn net(&self, i: usize) -> &Net {
        &self.nets[i]
    }

    /// Mutable access to net `i` (used by routers).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn net_mut(&mut self, i: usize) -> &mut Net {
        &mut self.nets[i]
    }

    /// Number of nets.
    pub fn len(&self) -> usize {
        self.nets.len()
    }

    /// Whether the netlist is empty.
    pub fn is_empty(&self) -> bool {
        self.nets.is_empty()
    }

    /// Total segment count across all nets.
    pub fn num_segments(&self) -> usize {
        self.nets.iter().map(|n| n.tree().num_segments()).sum()
    }

    /// Iterates over every segment of every net.
    pub fn segment_refs(&self) -> impl Iterator<Item = SegmentRef> + '_ {
        self.nets.iter().enumerate().flat_map(|(ni, n)| {
            // cast: net/segment ordinals come from the u32-indexed arena.
            (0..n.tree().num_segments()).map(move |si| SegmentRef::new(ni as u32, si as u32))
        })
    }

    /// Validates every net against the grid dimensions.
    ///
    /// # Errors
    ///
    /// Returns the first violation, prefixed with the net index.
    pub fn validate(&self, width: u16, height: u16) -> Result<(), String> {
        for (i, n) in self.nets.iter().enumerate() {
            n.validate(width, height)
                .map_err(|e| format!("net {i}: {e}"))?;
        }
        Ok(())
    }
}

impl FromIterator<Net> for Netlist {
    fn from_iter<T: IntoIterator<Item = Net>>(iter: T) -> Netlist {
        Netlist {
            nets: iter.into_iter().collect(),
        }
    }
}

impl Extend<Net> for Netlist {
    fn extend<T: IntoIterator<Item = Net>>(&mut self, iter: T) {
        self.nets.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Pin, RouteTreeBuilder};
    use grid::Cell;

    fn two_pin_net(name: &str, from: Cell, to: Cell) -> Net {
        let mut b = RouteTreeBuilder::new(from);
        let bend = Cell::new(to.x, from.y);
        let mut cur = b.root();
        if bend != from {
            cur = b.add_segment(cur, bend).unwrap();
        }
        if bend != to {
            cur = b.add_segment(cur, to).unwrap();
        }
        b.attach_pin(b.root(), 0).unwrap();
        b.attach_pin(cur, 1).unwrap();
        Net::new(
            name,
            vec![Pin::source(from, 10.0), Pin::sink(to, 1.0)],
            b.build().unwrap(),
        )
    }

    #[test]
    fn segment_refs_cover_all_segments() {
        let mut nl = Netlist::new();
        nl.push(two_pin_net("a", Cell::new(0, 0), Cell::new(3, 2)));
        nl.push(two_pin_net("b", Cell::new(1, 1), Cell::new(1, 4)));
        assert_eq!(nl.num_segments(), 3);
        let refs: Vec<_> = nl.segment_refs().collect();
        assert_eq!(refs.len(), 3);
        assert_eq!(refs[0], SegmentRef::new(0, 0));
        assert_eq!(refs[2], SegmentRef::new(1, 0));
    }

    #[test]
    fn collects_from_iterator() {
        let nl: Netlist = vec![two_pin_net("a", Cell::new(0, 0), Cell::new(2, 2))]
            .into_iter()
            .collect();
        assert_eq!(nl.len(), 1);
        nl.validate(8, 8).unwrap();
    }
}
