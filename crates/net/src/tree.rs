//! Routed net topologies: trees of straight wire segments.
//!
//! Storage is structure-of-arrays: per-node fields live in parallel flat
//! vectors and the child lists are a CSR range (`child_start` offsets
//! into one shared `children` buffer), so a million-segment design is a
//! handful of contiguous allocations instead of one heap node per tree
//! vertex. [`TreeNode`] is a cheap by-value view assembled on demand;
//! traversal orders are unchanged from the per-node layout because the
//! builder flattens each node's children in insertion order.

use std::error::Error;
use std::fmt;

use grid::{Cell, Direction, Edge2d};

/// Sentinel for "no index" in the flat `u32` arrays (`Option<u32>` at
/// the API surface).
const NONE: u32 = u32::MAX;

fn opt(v: u32) -> Option<u32> {
    if v == NONE {
        None
    } else {
        Some(v)
    }
}

/// Error returned by [`RouteTreeBuilder`] methods.
#[derive(Clone, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum BuildTreeError {
    /// A path waypoint is not rectilinear with respect to its predecessor.
    NotRectilinear {
        /// Start of the offending leg.
        from: Cell,
        /// End of the offending leg.
        to: Cell,
    },
    /// A path leg has zero length.
    ZeroLength(Cell),
    /// A referenced node index does not exist.
    UnknownNode(usize),
    /// A pin index was attached twice to the same tree.
    PinAlreadyAttached(u32),
    /// The builder holds no segments (single-node trees are only valid for
    /// single-pin nets, which carry no layer-assignment freedom).
    Empty,
}

impl fmt::Display for BuildTreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildTreeError::NotRectilinear { from, to } => {
                write!(f, "path leg {from}->{to} is not axis-aligned")
            }
            BuildTreeError::ZeroLength(c) => {
                write!(f, "zero-length path leg at {c}")
            }
            BuildTreeError::UnknownNode(n) => write!(f, "unknown node {n}"),
            BuildTreeError::PinAlreadyAttached(p) => {
                write!(f, "pin {p} already attached")
            }
            BuildTreeError::Empty => f.write_str("tree has no segments"),
        }
    }
}

impl Error for BuildTreeError {}

/// A vertex of a [`RouteTree`]: a grid cell, its tree links, and an
/// optional pin. This is a by-value view assembled from the tree's flat
/// arrays; child segments are served separately by
/// [`RouteTree::child_segments`].
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct TreeNode {
    /// Location of the node.
    pub cell: Cell,
    /// Parent node index (`None` for the root).
    pub parent: Option<u32>,
    /// Segment connecting this node to its parent.
    pub parent_segment: Option<u32>,
    /// Pin index within the owning net, if a pin sits here.
    pub pin: Option<u32>,
}

/// A straight wire of a [`RouteTree`], directed parent → child.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct Segment {
    /// Parent-side node index.
    pub from: u32,
    /// Child-side node index.
    pub to: u32,
    /// Orientation (horizontal segments vary in x).
    pub dir: Direction,
}

/// A routed 2-D topology: a tree of straight [`Segment`]s rooted at the
/// source pin's node (index 0), stored as flat parallel arrays.
#[derive(Clone, PartialEq, Debug)]
pub struct RouteTree {
    cells: Vec<Cell>,
    /// Parent node per node (`NONE` for the root).
    parent: Vec<u32>,
    /// Parent segment per node (`NONE` for the root).
    parent_seg: Vec<u32>,
    /// Pin index per node (`NONE` when no pin sits there).
    pin: Vec<u32>,
    /// CSR offsets into `children`; node `n` owns
    /// `children[child_start[n]..child_start[n + 1]]`.
    child_start: Vec<u32>,
    /// Child segment indices, grouped per node in insertion order.
    children: Vec<u32>,
    segments: Vec<Segment>,
}

impl RouteTree {
    /// The root node index (always 0; the source pin's node).
    pub fn root(&self) -> usize {
        0
    }

    /// All nodes, as by-value views in index order.
    pub fn nodes(&self) -> NodeIter<'_> {
        NodeIter {
            tree: self,
            next: 0,
        }
    }

    /// The node with index `n`, as a by-value view.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range.
    pub fn node(&self, n: usize) -> TreeNode {
        TreeNode {
            cell: self.cells[n],
            parent: opt(self.parent[n]),
            parent_segment: opt(self.parent_seg[n]),
            pin: opt(self.pin[n]),
        }
    }

    /// All segments.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// The segment with index `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    pub fn segment(&self, s: usize) -> Segment {
        self.segments[s]
    }

    /// Number of segments.
    pub fn num_segments(&self) -> usize {
        self.segments.len()
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.cells.len()
    }

    /// Length of segment `s` in grid edges.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    pub fn segment_length(&self, s: usize) -> u32 {
        let seg = self.segments[s];
        self.cells[seg.from as usize].manhattan(self.cells[seg.to as usize])
    }

    /// Index of the segment connecting node `n` to its parent.
    pub fn parent_segment(&self, n: usize) -> Option<usize> {
        opt(self.parent_seg[n]).map(|s| s as usize)
    }

    /// Segments from node `n` down to its children, in insertion order.
    pub fn child_segments(&self, n: usize) -> &[u32] {
        let lo = self.child_start[n] as usize;
        let hi = self.child_start[n + 1] as usize;
        &self.children[lo..hi]
    }

    /// The 2-D grid edges covered by segment `s`, in order from the
    /// parent-side endpoint.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    pub fn segment_edges(&self, s: usize) -> Vec<Edge2d> {
        let seg = self.segments[s];
        let a = self.cells[seg.from as usize];
        let b = self.cells[seg.to as usize];
        let mut out = Vec::with_capacity(a.manhattan(b) as usize);
        match seg.dir {
            Direction::Horizontal => {
                let (x0, x1) = (a.x.min(b.x), a.x.max(b.x));
                if a.x <= b.x {
                    for x in x0..x1 {
                        out.push(Edge2d::horizontal(x, a.y));
                    }
                } else {
                    for x in (x0..x1).rev() {
                        out.push(Edge2d::horizontal(x, a.y));
                    }
                }
            }
            Direction::Vertical => {
                let (y0, y1) = (a.y.min(b.y), a.y.max(b.y));
                if a.y <= b.y {
                    for y in y0..y1 {
                        out.push(Edge2d::vertical(a.x, y));
                    }
                } else {
                    for y in (y0..y1).rev() {
                        out.push(Edge2d::vertical(a.x, y));
                    }
                }
            }
        }
        out
    }

    /// Segment indices in postorder: every segment appears after all
    /// segments in the subtree below it. This is the evaluation order for
    /// downstream capacitance.
    pub fn postorder_segments(&self) -> Vec<usize> {
        let mut order = Vec::with_capacity(self.segments.len());
        // Iterative DFS from the root.
        let mut stack = vec![(self.root(), false)];
        let mut visit_stack: Vec<usize> = Vec::new();
        while let Some((node, processed)) = stack.pop() {
            if processed {
                if let Some(seg) = self.parent_segment(node) {
                    visit_stack.push(seg);
                }
                continue;
            }
            stack.push((node, true));
            for &cs in self.child_segments(node) {
                let child = self.segments[cs as usize].to as usize;
                stack.push((child, false));
            }
        }
        order.extend(visit_stack);
        order
    }

    /// Segment indices in preorder: every segment appears before the
    /// segments below it (top-down accumulation order for Elmore delay).
    pub fn preorder_segments(&self) -> Vec<usize> {
        let mut order = Vec::with_capacity(self.segments.len());
        let mut stack = vec![self.root()];
        while let Some(node) = stack.pop() {
            for &cs in self.child_segments(node) {
                order.push(cs as usize);
                stack.push(self.segments[cs as usize].to as usize);
            }
        }
        order
    }

    /// The segments on the path from the root to node `n`, root side
    /// first.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range.
    pub fn path_segments(&self, n: usize) -> Vec<usize> {
        let mut path = Vec::new();
        let mut cur = n;
        while let Some(seg) = self.parent_segment(cur) {
            path.push(seg);
            cur = self.segments[seg].from as usize;
        }
        path.reverse();
        path
    }

    /// Finds the node at `cell`, if any.
    pub fn find_node_at(&self, cell: Cell) -> Option<usize> {
        self.cells.iter().position(|&c| c == cell)
    }

    /// Total wirelength in grid edges.
    pub fn wirelength(&self) -> u64 {
        (0..self.segments.len())
            .map(|s| self.segment_length(s) as u64)
            .sum()
    }

    /// Checks structural invariants: nodes in bounds, segments straight
    /// with positive length and consistent links, and no 2-D grid edge
    /// covered twice.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violation.
    pub fn validate(&self, width: u16, height: u16) -> Result<(), String> {
        if self.segments.is_empty() {
            return Err("tree has no segments".into());
        }
        for (i, n) in self.nodes().enumerate() {
            if n.cell.x >= width || n.cell.y >= height {
                return Err(format!("node {i} at {} out of bounds", n.cell));
            }
            if i == 0 {
                if n.parent.is_some() || n.parent_segment.is_some() {
                    return Err("root has a parent".into());
                }
            } else if n.parent.is_none() || n.parent_segment.is_none() {
                return Err(format!("non-root node {i} has no parent"));
            }
        }
        let mut covered = std::collections::HashSet::new();
        for (s, seg) in self.segments.iter().enumerate() {
            let a = self.cells[seg.from as usize];
            let b = self.cells[seg.to as usize];
            if a.x != b.x && a.y != b.y {
                return Err(format!("segment {s} {a}->{b} is not straight"));
            }
            if a == b {
                return Err(format!("segment {s} at {a} has zero length"));
            }
            let expect_dir = if a.y == b.y {
                Direction::Horizontal
            } else {
                Direction::Vertical
            };
            if seg.dir != expect_dir {
                return Err(format!("segment {s} direction mismatch"));
            }
            if self.parent_seg[seg.to as usize] != s as u32 {
                return Err(format!("segment {s} child link broken"));
            }
            for e in self.segment_edges(s) {
                if !covered.insert(e) {
                    return Err(format!("edge {e} covered twice"));
                }
            }
        }
        Ok(())
    }
}

/// Iterator over a tree's nodes as by-value [`TreeNode`] views.
#[derive(Clone, Debug)]
pub struct NodeIter<'a> {
    tree: &'a RouteTree,
    next: usize,
}

impl Iterator for NodeIter<'_> {
    type Item = TreeNode;

    fn next(&mut self) -> Option<TreeNode> {
        if self.next >= self.tree.num_nodes() {
            return None;
        }
        let n = self.tree.node(self.next);
        self.next += 1;
        Some(n)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.tree.num_nodes() - self.next;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for NodeIter<'_> {}

/// Builder-side node: children kept as a per-node vector until
/// [`RouteTreeBuilder::build`] flattens them into the CSR layout.
#[derive(Clone, Debug)]
struct BuilderNode {
    cell: Cell,
    parent: Option<u32>,
    parent_segment: Option<u32>,
    child_segments: Vec<u32>,
    pin: Option<u32>,
}

/// Incremental builder for [`RouteTree`], used by routers.
#[derive(Clone, Debug)]
pub struct RouteTreeBuilder {
    nodes: Vec<BuilderNode>,
    segments: Vec<Segment>,
}

impl RouteTreeBuilder {
    /// Starts a tree rooted at `root` (the source pin's cell).
    pub fn new(root: Cell) -> RouteTreeBuilder {
        RouteTreeBuilder {
            nodes: vec![BuilderNode {
                cell: root,
                parent: None,
                parent_segment: None,
                child_segments: Vec::new(),
                pin: None,
            }],
            segments: Vec::new(),
        }
    }

    /// The root node index.
    pub fn root(&self) -> usize {
        0
    }

    /// Cell of node `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range.
    pub fn node_cell(&self, n: usize) -> Cell {
        self.nodes[n].cell
    }

    /// Number of nodes created so far.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Appends one straight segment from node `from` to `to_cell`,
    /// creating and returning the new child node.
    ///
    /// # Errors
    ///
    /// Returns an error if `from` does not exist, the leg is not
    /// axis-aligned, or it has zero length.
    pub fn add_segment(&mut self, from: usize, to_cell: Cell) -> Result<usize, BuildTreeError> {
        let from_cell = self
            .nodes
            .get(from)
            .ok_or(BuildTreeError::UnknownNode(from))?
            .cell;
        if from_cell == to_cell {
            return Err(BuildTreeError::ZeroLength(to_cell));
        }
        let dir = if from_cell.y == to_cell.y {
            Direction::Horizontal
        } else if from_cell.x == to_cell.x {
            Direction::Vertical
        } else {
            return Err(BuildTreeError::NotRectilinear {
                from: from_cell,
                to: to_cell,
            });
        };
        let node_idx = self.nodes.len();
        let seg_idx = self.segments.len();
        self.segments.push(Segment {
            from: from as u32,
            to: node_idx as u32,
            dir,
        });
        self.nodes.push(BuilderNode {
            cell: to_cell,
            parent: Some(from as u32),
            parent_segment: Some(seg_idx as u32),
            child_segments: Vec::new(),
            pin: None,
        });
        self.nodes[from].child_segments.push(seg_idx as u32);
        Ok(node_idx)
    }

    /// Appends a rectilinear path through `waypoints` starting at node
    /// `from`; each leg becomes one segment. Returns the final node.
    ///
    /// # Errors
    ///
    /// Same conditions as [`RouteTreeBuilder::add_segment`].
    pub fn add_path(&mut self, from: usize, waypoints: &[Cell]) -> Result<usize, BuildTreeError> {
        let mut cur = from;
        for &w in waypoints {
            cur = self.add_segment(cur, w)?;
        }
        Ok(cur)
    }

    /// Splits segment `seg` at `cell` (which must lie strictly inside it),
    /// creating and returning a new node there. Existing node and segment
    /// indices remain valid; `seg` keeps its parent-side half.
    ///
    /// # Errors
    ///
    /// Returns [`BuildTreeError::UnknownNode`] if `seg` is out of range
    /// (reported with the segment index), or
    /// [`BuildTreeError::NotRectilinear`] if `cell` is not strictly
    /// interior to the segment.
    pub fn split_segment_at(&mut self, seg: usize, cell: Cell) -> Result<usize, BuildTreeError> {
        let s = *self
            .segments
            .get(seg)
            .ok_or(BuildTreeError::UnknownNode(seg))?;
        let a = self.nodes[s.from as usize].cell;
        let b = self.nodes[s.to as usize].cell;
        let interior = match s.dir {
            Direction::Horizontal => {
                cell.y == a.y && cell.x > a.x.min(b.x) && cell.x < a.x.max(b.x)
            }
            Direction::Vertical => cell.x == a.x && cell.y > a.y.min(b.y) && cell.y < a.y.max(b.y),
        };
        if !interior {
            return Err(BuildTreeError::NotRectilinear { from: a, to: cell });
        }
        let mid_idx = self.nodes.len();
        let new_seg_idx = self.segments.len();
        // New node takes over the child-side half.
        self.nodes.push(BuilderNode {
            cell,
            parent: Some(s.from),
            parent_segment: Some(seg as u32),
            child_segments: vec![new_seg_idx as u32],
            pin: None,
        });
        self.segments.push(Segment {
            from: mid_idx as u32,
            to: s.to,
            dir: s.dir,
        });
        // Original segment now ends at the new node.
        self.segments[seg].to = mid_idx as u32;
        let old_child = s.to as usize;
        self.nodes[old_child].parent = Some(mid_idx as u32);
        self.nodes[old_child].parent_segment = Some(new_seg_idx as u32);
        Ok(mid_idx)
    }

    /// Attaches pin index `pin` (within the owning net) to node `node`.
    ///
    /// # Errors
    ///
    /// Returns an error if the node does not exist or already carries a
    /// pin.
    pub fn attach_pin(&mut self, node: usize, pin: u32) -> Result<(), BuildTreeError> {
        let n = self
            .nodes
            .get_mut(node)
            .ok_or(BuildTreeError::UnknownNode(node))?;
        if n.pin.is_some() {
            return Err(BuildTreeError::PinAlreadyAttached(pin));
        }
        n.pin = Some(pin);
        Ok(())
    }

    /// Finds an existing node at `cell`.
    pub fn find_node_at(&self, cell: Cell) -> Option<usize> {
        self.nodes.iter().position(|n| n.cell == cell)
    }

    /// Finds the segment whose interior passes through `cell`, if any.
    pub fn find_segment_through(&self, cell: Cell) -> Option<usize> {
        self.segments.iter().position(|s| {
            let a = self.nodes[s.from as usize].cell;
            let b = self.nodes[s.to as usize].cell;
            match s.dir {
                Direction::Horizontal => {
                    cell.y == a.y && cell.x > a.x.min(b.x) && cell.x < a.x.max(b.x)
                }
                Direction::Vertical => {
                    cell.x == a.x && cell.y > a.y.min(b.y) && cell.y < a.y.max(b.y)
                }
            }
        })
    }

    /// Finishes the tree, flattening per-node child lists into the CSR
    /// layout. Children are laid out in node order with each node's
    /// insertion order preserved, so traversal orders — and therefore all
    /// delay arithmetic downstream — are bit-identical to the per-node
    /// layout.
    ///
    /// # Errors
    ///
    /// Returns [`BuildTreeError::Empty`] if no segments were added.
    pub fn build(self) -> Result<RouteTree, BuildTreeError> {
        if self.segments.is_empty() {
            return Err(BuildTreeError::Empty);
        }
        let n = self.nodes.len();
        let mut cells = Vec::with_capacity(n);
        let mut parent = Vec::with_capacity(n);
        let mut parent_seg = Vec::with_capacity(n);
        let mut pin = Vec::with_capacity(n);
        let mut child_start = Vec::with_capacity(n + 1);
        let mut children = Vec::with_capacity(self.segments.len());
        for node in &self.nodes {
            cells.push(node.cell);
            parent.push(node.parent.unwrap_or(NONE));
            parent_seg.push(node.parent_segment.unwrap_or(NONE));
            pin.push(node.pin.unwrap_or(NONE));
            child_start.push(children.len() as u32);
            children.extend_from_slice(&node.child_segments);
        }
        child_start.push(children.len() as u32);
        Ok(RouteTree {
            cells,
            parent,
            parent_seg,
            pin,
            child_start,
            children,
            segments: self.segments,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Y-shaped tree: root (0,0) → (3,0); branch at (1,0) up to (1,2).
    fn y_tree() -> RouteTree {
        let mut b = RouteTreeBuilder::new(Cell::new(0, 0));
        let end = b.add_segment(b.root(), Cell::new(3, 0)).unwrap();
        let _ = end;
        let seg0 = 0; // (0,0)->(3,0)
        let mid = b.split_segment_at(seg0, Cell::new(1, 0)).unwrap();
        b.add_segment(mid, Cell::new(1, 2)).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn split_preserves_invariants() {
        let t = y_tree();
        t.validate(8, 8).unwrap();
        assert_eq!(t.num_segments(), 3);
        assert_eq!(t.wirelength(), 5);
    }

    #[test]
    fn postorder_visits_children_first() {
        let t = y_tree();
        let post = t.postorder_segments();
        assert_eq!(post.len(), 3);
        // Segment 0 is the root-side half (0,0)->(1,0): must come last.
        assert_eq!(*post.last().unwrap(), 0);
    }

    #[test]
    fn preorder_visits_parents_first() {
        let t = y_tree();
        let pre = t.preorder_segments();
        assert_eq!(pre[0], 0);
        let pos = |s: usize| pre.iter().position(|&x| x == s).unwrap();
        for s in 1..3 {
            let parent_node = t.segment(s).from as usize;
            if let Some(ps) = t.parent_segment(parent_node) {
                assert!(pos(ps) < pos(s));
            }
        }
    }

    #[test]
    fn path_segments_reaches_root() {
        let t = y_tree();
        // Find the node at (1,2).
        let n = t.find_node_at(Cell::new(1, 2)).unwrap();
        let path = t.path_segments(n);
        assert_eq!(path.len(), 2);
        assert_eq!(path[0], 0, "path must start at the root-side segment");
    }

    #[test]
    fn segment_edges_order_follows_direction() {
        let mut b = RouteTreeBuilder::new(Cell::new(3, 0));
        b.add_segment(0, Cell::new(0, 0)).unwrap(); // rightward -> leftward
        let t = b.build().unwrap();
        let edges = t.segment_edges(0);
        assert_eq!(edges.len(), 3);
        assert_eq!(edges[0], Edge2d::horizontal(2, 0));
        assert_eq!(edges[2], Edge2d::horizontal(0, 0));
    }

    #[test]
    fn builder_rejects_diagonal() {
        let mut b = RouteTreeBuilder::new(Cell::new(0, 0));
        let err = b.add_segment(0, Cell::new(1, 1)).unwrap_err();
        assert!(matches!(err, BuildTreeError::NotRectilinear { .. }));
    }

    #[test]
    fn builder_rejects_zero_length() {
        let mut b = RouteTreeBuilder::new(Cell::new(0, 0));
        let err = b.add_segment(0, Cell::new(0, 0)).unwrap_err();
        assert!(matches!(err, BuildTreeError::ZeroLength(_)));
    }

    #[test]
    fn validate_detects_duplicate_edge_coverage() {
        // Two segments covering the same horizontal edge.
        let mut b = RouteTreeBuilder::new(Cell::new(0, 0));
        let n = b.add_segment(0, Cell::new(2, 0)).unwrap();
        b.add_segment(n, Cell::new(0, 0)).unwrap(); // doubles back
        let t = b.build().unwrap();
        let err = t.validate(8, 8).unwrap_err();
        assert!(err.contains("covered twice"), "{err}");
    }

    #[test]
    fn split_rejects_endpoint() {
        let mut b = RouteTreeBuilder::new(Cell::new(0, 0));
        b.add_segment(0, Cell::new(3, 0)).unwrap();
        assert!(b.split_segment_at(0, Cell::new(0, 0)).is_err());
        assert!(b.split_segment_at(0, Cell::new(3, 0)).is_err());
        assert!(b.split_segment_at(0, Cell::new(1, 1)).is_err());
    }

    #[test]
    fn find_segment_through_interior_only() {
        let mut b = RouteTreeBuilder::new(Cell::new(0, 0));
        b.add_segment(0, Cell::new(3, 0)).unwrap();
        assert_eq!(b.find_segment_through(Cell::new(2, 0)), Some(0));
        assert_eq!(b.find_segment_through(Cell::new(0, 0)), None);
        assert_eq!(b.find_segment_through(Cell::new(3, 0)), None);
    }

    #[test]
    fn csr_children_match_insertion_order() {
        let t = y_tree();
        // Root (node 0) has one child segment: 0. The split node (index
        // 2 after split) carries segments 1 (child-side half) then 2
        // (branch), in that insertion order.
        assert_eq!(t.child_segments(0), &[0]);
        let mid = t.find_node_at(Cell::new(1, 0)).unwrap();
        assert_eq!(t.child_segments(mid), &[1, 2]);
        assert_eq!(t.nodes().len(), t.num_nodes());
        let cells: Vec<Cell> = t.nodes().map(|n| n.cell).collect();
        assert_eq!(cells.len(), 4);
    }
}
