//! Layer assignments and their reflection into grid usage.

#![allow(clippy::needless_range_loop)] // segment indices are the domain

use grid::Grid;

use crate::{Net, Netlist, SegmentRef};

/// A complete layer assignment: one layer index per segment of every net.
///
/// The assignment is the central mutable state of incremental layer
/// assignment: TILA and CPLA both read and rewrite it, and
/// [`apply_to_grid`] projects it into wire/via usage tallies.
#[derive(Clone, PartialEq, Debug)]
pub struct Assignment {
    layers: Vec<Vec<usize>>,
}

impl Assignment {
    /// Creates an assignment placing every segment on the *lowest* layer
    /// of its direction — the canonical "all wires down" starting point.
    ///
    /// # Panics
    ///
    /// Panics if the grid lacks a layer for some segment direction
    /// (impossible for grids built by `GridBuilder`, which requires both).
    pub fn lowest_layers(netlist: &Netlist, grid: &Grid) -> Assignment {
        let lowest = |dir| {
            grid.layers_in_direction(dir)
                .next()
                // invariant: GridBuilder requires both directions.
                .expect("grid must have a layer per direction")
        };
        let layers = netlist
            .nets()
            .iter()
            .map(|n| n.tree().segments().iter().map(|s| lowest(s.dir)).collect())
            .collect();
        Assignment { layers }
    }

    /// Layer of segment `seg` of net `net`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn layer(&self, net: usize, seg: usize) -> usize {
        self.layers[net][seg]
    }

    /// Layer of the segment addressed by `r`.
    ///
    /// # Panics
    ///
    /// Panics if the reference is out of range.
    pub fn layer_of(&self, r: SegmentRef) -> usize {
        self.layers[r.net as usize][r.seg as usize]
    }

    /// Re-assigns segment `seg` of net `net` to `layer`.
    ///
    /// Callers are responsible for keeping grid usage in sync (remove the
    /// net, mutate, restore — see [`remove_net_from_grid`]).
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn set_layer(&mut self, net: usize, seg: usize, layer: usize) {
        self.layers[net][seg] = layer;
    }

    /// The per-segment layers of one net.
    ///
    /// # Panics
    ///
    /// Panics if `net` is out of range.
    pub fn net_layers(&self, net: usize) -> &[usize] {
        &self.layers[net]
    }

    /// Replaces the layer vector of one net.
    ///
    /// # Panics
    ///
    /// Panics if `net` is out of range or the length differs from the
    /// net's segment count recorded at construction.
    pub fn set_net_layers(&mut self, net: usize, layers: Vec<usize>) {
        assert_eq!(self.layers[net].len(), layers.len());
        self.layers[net] = layers;
    }

    /// Number of nets covered.
    pub fn num_nets(&self) -> usize {
        self.layers.len()
    }

    /// Total via count over the whole netlist.
    ///
    /// # Panics
    ///
    /// Panics if `netlist` does not match the assignment's shape.
    pub fn total_via_count(&self, netlist: &Netlist) -> u64 {
        netlist
            .nets()
            .iter()
            .zip(&self.layers)
            .map(|(n, l)| n.via_count(l))
            .sum()
    }

    /// Checks that every segment sits on a layer whose direction matches
    /// the segment's orientation.
    ///
    /// # Errors
    ///
    /// Returns a description of the first mismatch.
    pub fn validate(&self, netlist: &Netlist, grid: &Grid) -> Result<(), String> {
        if self.layers.len() != netlist.len() {
            return Err(format!(
                "assignment covers {} nets, netlist has {}",
                self.layers.len(),
                netlist.len()
            ));
        }
        for (ni, (n, ls)) in netlist.nets().iter().zip(&self.layers).enumerate() {
            if ls.len() != n.tree().num_segments() {
                return Err(format!(
                    "net {ni}: {} layers for {} segments",
                    ls.len(),
                    n.tree().num_segments()
                ));
            }
            for (si, (&l, seg)) in ls.iter().zip(n.tree().segments()).enumerate() {
                if l >= grid.num_layers() {
                    return Err(format!("net {ni} segment {si}: layer {l} out of range"));
                }
                if grid.layer(l).direction != seg.dir {
                    return Err(format!(
                        "net {ni} segment {si}: {} segment on {} layer {l}",
                        seg.dir,
                        grid.layer(l).direction
                    ));
                }
            }
        }
        Ok(())
    }
}

/// Adds the wires and vias of every net to the grid's usage tallies.
///
/// # Panics
///
/// Panics if the assignment does not match the netlist/grid (validate
/// first), or if a segment leaves the grid.
pub fn apply_to_grid(grid: &mut Grid, netlist: &Netlist, assignment: &Assignment) {
    for (ni, n) in netlist.nets().iter().enumerate() {
        restore_net_to_grid(grid, n, assignment.net_layers(ni));
    }
}

/// Subtracts one net's wires and vias from the grid's usage tallies,
/// given the layer vector it is currently assigned to.
///
/// # Panics
///
/// Panics if the net's usage was not previously recorded (underflow), or
/// the layer vector is the wrong length.
pub fn remove_net_from_grid(grid: &mut Grid, net: &Net, layers: &[usize]) {
    assert_eq!(layers.len(), net.tree().num_segments());
    for s in 0..net.tree().num_segments() {
        for e in net.tree().segment_edges(s) {
            grid.remove_wire(layers[s], e);
        }
    }
    for (cell, lo, hi) in net.via_stacks(layers) {
        grid.remove_via_stack(cell, lo, hi);
    }
}

/// Adds one net's wires and vias to the grid's usage tallies, given its
/// layer vector. Inverse of [`remove_net_from_grid`].
///
/// # Panics
///
/// Panics if the layer vector is the wrong length or a segment leaves the
/// grid.
pub fn restore_net_to_grid(grid: &mut Grid, net: &Net, layers: &[usize]) {
    assert_eq!(layers.len(), net.tree().num_segments());
    for s in 0..net.tree().num_segments() {
        for e in net.tree().segment_edges(s) {
            grid.add_wire(layers[s], e);
        }
    }
    for (cell, lo, hi) in net.via_stacks(layers) {
        grid.add_via_stack(cell, lo, hi);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Pin, RouteTreeBuilder};
    use grid::{Cell, Direction, Edge2d, GridBuilder};

    fn fixture() -> (Grid, Netlist) {
        let grid = GridBuilder::new(8, 8)
            .alternating_layers(4, Direction::Horizontal)
            .uniform_capacity(8)
            .build()
            .unwrap();
        let mut b = RouteTreeBuilder::new(Cell::new(1, 1));
        let c = b.add_segment(b.root(), Cell::new(4, 1)).unwrap();
        let e = b.add_segment(c, Cell::new(4, 5)).unwrap();
        b.attach_pin(b.root(), 0).unwrap();
        b.attach_pin(e, 1).unwrap();
        let net = Net::new(
            "n",
            vec![
                Pin::source(Cell::new(1, 1), 10.0),
                Pin::sink(Cell::new(4, 5), 1.0),
            ],
            b.build().unwrap(),
        );
        let mut nl = Netlist::new();
        nl.push(net);
        (grid, nl)
    }

    #[test]
    fn lowest_layers_match_direction() {
        let (grid, nl) = fixture();
        let a = Assignment::lowest_layers(&nl, &grid);
        a.validate(&nl, &grid).unwrap();
        assert_eq!(a.layer(0, 0), 0); // horizontal -> M1
        assert_eq!(a.layer(0, 1), 1); // vertical -> M2
    }

    #[test]
    fn apply_then_remove_is_identity() {
        let (mut grid, nl) = fixture();
        let a = Assignment::lowest_layers(&nl, &grid);
        let before = grid.snapshot_usage();
        apply_to_grid(&mut grid, &nl, &a);
        assert_eq!(grid.edge_usage(0, Edge2d::horizontal(1, 1)), 1);
        assert_eq!(grid.edge_usage(1, Edge2d::vertical(4, 3)), 1);
        remove_net_from_grid(&mut grid, nl.net(0), a.net_layers(0));
        let after = grid.snapshot_usage();
        assert_eq!(before, after);
    }

    #[test]
    fn validate_rejects_direction_mismatch() {
        let (grid, nl) = fixture();
        let mut a = Assignment::lowest_layers(&nl, &grid);
        a.set_layer(0, 0, 1); // horizontal segment on vertical layer
        assert!(a.validate(&nl, &grid).is_err());
    }

    #[test]
    fn via_count_tracks_assignment() {
        let (grid, nl) = fixture();
        let mut a = Assignment::lowest_layers(&nl, &grid);
        let low = a.total_via_count(&nl);
        a.set_layer(0, 0, 2); // push horizontal segment to M3
        a.set_layer(0, 1, 3); // vertical to M4
        let high = a.total_via_count(&nl);
        assert!(high > low, "{high} vs {low}");
        a.validate(&nl, &grid).unwrap();
    }
}
