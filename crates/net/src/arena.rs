//! Design-wide arena: every net's segments and nodes laid out back to
//! back in flat arrays, addressed by typed ids.
//!
//! The per-net [`RouteTree`](crate::RouteTree) is already
//! structure-of-arrays; the arena adds the *cross-net* layout a
//! million-segment design needs: one CSR range per net into design-global
//! segment/node index spaces, plus the per-segment derived data the hot
//! paths consume (partition anchors, lengths, owning net). Downstream
//! code indexes dense vectors by [`SegId`] instead of hashing
//! [`SegmentRef`](crate::SegmentRef)s.
//!
//! Arenas are built net by net ([`DesignArena::push_net`]) so a streaming
//! parser/router can feed them without a resident intermediate netlist,
//! or in one shot from a finished [`Netlist`] via
//! [`DesignArena::from_netlist`].
//!
//! In debug builds each arena carries a generation tag and stamps it into
//! every id it mints; accessors verify the tag, so ids cannot silently
//! cross arenas (see [`crate::ids`]).

use grid::Cell;

use crate::ids::{NetId, NodeId, SegId};
use crate::{Net, Netlist};

/// Flat design-wide index of all nets' segments and nodes.
#[derive(Clone, Debug, Default)]
pub struct DesignArena {
    /// Generation tag stamped into minted ids (debug builds).
    #[cfg(debug_assertions)]
    tag: u32,
    /// CSR: net `n` owns global segments `seg_start[n]..seg_start[n+1]`.
    seg_start: Vec<u32>,
    /// CSR: net `n` owns global nodes `node_start[n]..node_start[n+1]`.
    node_start: Vec<u32>,
    /// Partition anchor (segment midpoint) per global segment.
    anchor: Vec<Cell>,
    /// Length in grid edges per global segment.
    seg_len: Vec<u32>,
    /// Owning net per global segment.
    seg_net: Vec<u32>,
}

impl DesignArena {
    /// An empty arena ready for [`DesignArena::push_net`].
    pub fn new() -> DesignArena {
        DesignArena {
            #[cfg(debug_assertions)]
            tag: crate::ids::next_generation(),
            seg_start: vec![0],
            node_start: vec![0],
            anchor: Vec::new(),
            seg_len: Vec::new(),
            seg_net: Vec::new(),
        }
    }

    /// Builds the arena over a finished netlist, in net order.
    pub fn from_netlist(netlist: &Netlist) -> DesignArena {
        let mut arena = DesignArena::new();
        for net in netlist.nets() {
            arena.push_net(net);
        }
        arena
    }

    /// Appends one net's segments and nodes — the streaming seam: callers
    /// that parse and route net by net never need the whole design
    /// resident to grow the arena. Returns the net's id.
    pub fn push_net(&mut self, net: &Net) -> NetId {
        let ni = self.seg_start.len() - 1;
        let tree = net.tree();
        for s in 0..tree.num_segments() {
            let seg = tree.segment(s);
            let a = tree.node(seg.from as usize).cell;
            let b = tree.node(seg.to as usize).cell;
            // Midpoint anchor, identical to the partitioner's historical
            // per-call computation (u16 arithmetic; grid coordinates stay
            // far below the u16 midpoint-overflow bound).
            self.anchor
                .push(Cell::new((a.x + b.x) / 2, (a.y + b.y) / 2));
            self.seg_len.push(tree.segment_length(s));
            self.seg_net.push(ni as u32);
        }
        self.seg_start.push(self.anchor.len() as u32);
        // invariant: node_start is seeded with a leading 0 at
        // construction and only ever appended to, so `last()` exists.
        let nodes =
            *self.node_start.last().expect("CSR starts non-empty") as usize + tree.num_nodes();
        self.node_start.push(nodes as u32);
        NetId::new(ni as u32, self.generation())
    }

    fn generation(&self) -> u32 {
        #[cfg(debug_assertions)]
        {
            self.tag
        }
        #[cfg(not(debug_assertions))]
        {
            0
        }
    }

    /// Number of nets.
    pub fn num_nets(&self) -> usize {
        self.seg_start.len() - 1
    }

    /// Total number of segments across all nets.
    pub fn num_segments(&self) -> usize {
        self.anchor.len()
    }

    /// Total number of tree nodes across all nets.
    pub fn num_nodes(&self) -> usize {
        // invariant: node_start is seeded with a leading 0 at
        // construction and only ever appended to, so `last()` exists.
        *self.node_start.last().expect("CSR starts non-empty") as usize
    }

    /// The id of net `net` (by netlist index).
    ///
    /// # Panics
    ///
    /// Panics if `net` is out of range.
    pub fn net_id(&self, net: usize) -> NetId {
        assert!(net < self.num_nets(), "net {net} out of range");
        NetId::new(net as u32, self.generation())
    }

    /// The design-global id of segment `seg` of net `net` (both by
    /// plain index, mirroring [`SegmentRef`](crate::SegmentRef)).
    ///
    /// # Panics
    ///
    /// Panics if the segment does not exist.
    pub fn seg_id(&self, net: usize, seg: usize) -> SegId {
        let lo = self.seg_start[net] as usize;
        let hi = self.seg_start[net + 1] as usize;
        assert!(seg < hi - lo, "segment {seg} out of range for net {net}");
        SegId::new((lo + seg) as u32, self.generation())
    }

    /// First design-global segment index of net `net` — the base for
    /// turning per-net segment indices into dense table slots.
    pub fn seg_base(&self, net: usize) -> usize {
        self.seg_start[net] as usize
    }

    /// Design-global segment range of net `id`.
    pub fn seg_range(&self, id: NetId) -> std::ops::Range<usize> {
        id.check(self.generation());
        let n = id.index();
        self.seg_start[n] as usize..self.seg_start[n + 1] as usize
    }

    /// First design-global node index of net `net`.
    pub fn node_base(&self, net: usize) -> usize {
        self.node_start[net] as usize
    }

    /// Design-global node range of net `id`.
    pub fn node_range(&self, id: NetId) -> std::ops::Range<usize> {
        id.check(self.generation());
        let n = id.index();
        self.node_start[n] as usize..self.node_start[n + 1] as usize
    }

    /// The design-global id of node `node` of net `net`.
    ///
    /// # Panics
    ///
    /// Panics if the node does not exist.
    pub fn node_id(&self, net: usize, node: usize) -> NodeId {
        let lo = self.node_start[net] as usize;
        let hi = self.node_start[net + 1] as usize;
        assert!(node < hi - lo, "node {node} out of range for net {net}");
        NodeId::new((lo + node) as u32, self.generation())
    }

    /// The net owning node `id` (binary search over the node CSR).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node_net(&self, id: NodeId) -> NetId {
        id.check(self.generation());
        assert!(id.index() < self.num_nodes(), "node id out of range");
        // First net whose range ends beyond the node.
        let n = self
            .node_start
            .partition_point(|&start| start as usize <= id.index())
            - 1;
        NetId::new(n as u32, self.generation())
    }

    /// Partition anchor (midpoint cell) of segment `id`.
    pub fn anchor(&self, id: SegId) -> Cell {
        id.check(self.generation());
        self.anchor[id.index()]
    }

    /// All anchors, indexed by design-global segment index.
    pub fn anchors(&self) -> &[Cell] {
        &self.anchor
    }

    /// Length in grid edges of segment `id`.
    pub fn seg_len(&self, id: SegId) -> u32 {
        id.check(self.generation());
        self.seg_len[id.index()]
    }

    /// The net owning segment `id`.
    pub fn seg_net(&self, id: SegId) -> NetId {
        id.check(self.generation());
        NetId::new(self.seg_net[id.index()], self.generation())
    }

    /// The within-net segment index of `id` (its
    /// [`SegmentRef`](crate::SegmentRef) `seg` component).
    pub fn seg_offset(&self, id: SegId) -> usize {
        id.check(self.generation());
        let g = id.index();
        g - self.seg_start[self.seg_net[g] as usize] as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Pin, RouteTreeBuilder};

    fn two_net_list() -> Netlist {
        let mut nl = Netlist::new();
        for (i, len) in [3u16, 5].iter().enumerate() {
            let y = i as u16;
            let mut b = RouteTreeBuilder::new(Cell::new(0, y));
            let mid = b.add_segment(b.root(), Cell::new(2, y)).unwrap();
            let end = b.add_segment(mid, Cell::new(*len, y)).unwrap();
            b.attach_pin(b.root(), 0).unwrap();
            b.attach_pin(end, 1).unwrap();
            nl.push(Net::new(
                format!("n{i}"),
                vec![
                    Pin::source(Cell::new(0, y), 0.0),
                    Pin::sink(Cell::new(*len, y), 1.0),
                ],
                b.build().unwrap(),
            ));
        }
        nl
    }

    #[test]
    fn layout_matches_netlist() {
        let nl = two_net_list();
        let arena = DesignArena::from_netlist(&nl);
        assert_eq!(arena.num_nets(), 2);
        assert_eq!(arena.num_segments(), nl.num_segments());
        let total_nodes: usize = nl.nets().iter().map(|n| n.tree().num_nodes()).sum();
        assert_eq!(arena.num_nodes(), total_nodes);
        // Global ids are contiguous per net, in net order.
        assert_eq!(arena.seg_id(0, 0).index(), 0);
        assert_eq!(arena.seg_id(1, 0).index(), nl.net(0).tree().num_segments());
        let id = arena.seg_id(1, 1);
        assert_eq!(arena.seg_offset(id), 1);
        assert_eq!(arena.seg_net(id).index(), 1);
        assert_eq!(arena.seg_range(arena.net_id(1)).len(), 2);
    }

    #[test]
    fn anchors_are_segment_midpoints() {
        let nl = two_net_list();
        let arena = DesignArena::from_netlist(&nl);
        for (ni, net) in nl.nets().iter().enumerate() {
            let tree = net.tree();
            for s in 0..tree.num_segments() {
                let seg = tree.segment(s);
                let a = tree.node(seg.from as usize).cell;
                let b = tree.node(seg.to as usize).cell;
                let mid = Cell::new((a.x + b.x) / 2, (a.y + b.y) / 2);
                assert_eq!(arena.anchor(arena.seg_id(ni, s)), mid);
                assert_eq!(arena.seg_len(arena.seg_id(ni, s)), tree.segment_length(s));
            }
        }
    }

    #[test]
    fn incremental_push_matches_bulk_build() {
        let nl = two_net_list();
        let bulk = DesignArena::from_netlist(&nl);
        let mut inc = DesignArena::new();
        for net in nl.nets() {
            inc.push_net(net);
        }
        assert_eq!(inc.num_segments(), bulk.num_segments());
        assert_eq!(inc.anchors(), bulk.anchors());
    }

    #[test]
    fn node_net_inverts_node_id() {
        let nl = two_net_list();
        let arena = DesignArena::from_netlist(&nl);
        for ni in 0..arena.num_nets() {
            for node in 0..nl.net(ni).tree().num_nodes() {
                let id = arena.node_id(ni, node);
                assert_eq!(arena.node_net(id).index(), ni);
            }
        }
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "different arena")]
    fn stale_node_id_panics_in_debug() {
        let nl = two_net_list();
        let a = DesignArena::from_netlist(&nl);
        let b = DesignArena::from_netlist(&nl);
        let id = a.node_id(0, 1);
        let _ = b.node_net(id);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "different arena")]
    fn stale_seg_id_panics_in_debug() {
        let nl = two_net_list();
        let old = DesignArena::from_netlist(&nl);
        let id = old.seg_id(0, 0);
        // Rebuild (e.g. after rerouting): ids minted before the rebuild
        // must not silently index the new arena.
        let rebuilt = DesignArena::from_netlist(&nl);
        let _ = rebuilt.anchor(id);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "different arena")]
    fn cross_design_net_id_panics_in_debug() {
        let nl = two_net_list();
        let a = DesignArena::from_netlist(&nl);
        let b = DesignArena::from_netlist(&nl);
        let id = a.net_id(1);
        let _ = b.seg_range(id);
    }
}
