//! Net model for layer assignment.
//!
//! A [`Net`] connects one source [`Pin`] to one or more sink pins through a
//! routed 2-D topology, the [`RouteTree`]: a tree of straight wire
//! [`Segment`]s over grid cells. Layer assignment maps every segment onto a
//! metal layer of matching direction; the mapping for a whole design lives
//! in an [`Assignment`].
//!
//! Vias are *implied*: wherever two tree-adjacent segments sit on different
//! layers (or a segment must reach a pin on the pin layer), a via stack
//! spans the gap. [`Net::via_stacks`] enumerates them for a given
//! assignment, and [`apply_to_grid`] / [`remove_net_from_grid`] keep a
//! [`grid::Grid`]'s usage tallies in sync.
//!
//! # Example
//!
//! ```
//! use grid::{Cell, Direction};
//! use net::{Net, Pin, RouteTreeBuilder};
//!
//! # fn main() -> Result<(), net::BuildTreeError> {
//! // A two-pin net: source at (0,0), sink at (2,1), routed as an L.
//! let mut b = RouteTreeBuilder::new(Cell::new(0, 0));
//! let corner = b.add_path(b.root(), &[Cell::new(2, 0)])?;
//! let end = b.add_path(corner, &[Cell::new(2, 1)])?;
//! b.attach_pin(end, 1)?;
//! b.attach_pin(b.root(), 0)?;
//! let tree = b.build()?;
//! let net = Net::new(
//!     "n1",
//!     vec![Pin::source(Cell::new(0, 0), 25.0), Pin::sink(Cell::new(2, 1), 2.0)],
//!     tree,
//! );
//! assert_eq!(net.tree().num_segments(), 2);
//! # Ok(())
//! # }
//! ```

mod arena;
mod assignment;
mod ids;
mod netlist;
mod pin;
mod tree;

pub use arena::DesignArena;
pub use assignment::{apply_to_grid, remove_net_from_grid, restore_net_to_grid, Assignment};
pub use ids::{NetId, NodeId, SegId};
pub use netlist::{Netlist, SegmentRef};
pub use pin::Pin;
pub use tree::{BuildTreeError, NodeIter, RouteTree, RouteTreeBuilder, Segment, TreeNode};

use grid::Cell;

/// An unrouted net: the pin set a router must connect.
///
/// `pins[0]` is the source. Benchmark parsers and generators produce
/// `NetSpec`s; the `route` crate turns them into routed [`Net`]s.
#[derive(Clone, PartialEq, Debug)]
pub struct NetSpec {
    /// Net name.
    pub name: String,
    /// Pins; index 0 is the source.
    pub pins: Vec<Pin>,
    /// Driver output resistance (Ω).
    pub driver_resistance: f64,
}

impl NetSpec {
    /// Creates a spec. `pins[0]` is the source.
    ///
    /// # Panics
    ///
    /// Panics if `pins` is empty.
    pub fn new(name: impl Into<String>, pins: Vec<Pin>) -> NetSpec {
        assert!(!pins.is_empty(), "net spec must have at least one pin");
        NetSpec {
            name: name.into(),
            pins,
            driver_resistance: 0.0,
        }
    }
}

/// A net: named pin set plus its routed topology.
///
/// `pins[0]` is the source (driver); all other pins are sinks. Every pin
/// must be attached to a node of the tree (checked by
/// [`Net::validate`]).
#[derive(Clone, PartialEq, Debug)]
pub struct Net {
    name: String,
    pins: Vec<Pin>,
    tree: RouteTree,
    /// Output resistance of the driving cell (Ω). Added in front of the
    /// Elmore model; defaults to 0 (pure interconnect delay, as in the
    /// paper's formulation).
    pub driver_resistance: f64,
}

impl Net {
    /// Creates a net from pins and a routed tree. `pins[0]` is the source.
    ///
    /// # Panics
    ///
    /// Panics if `pins` is empty.
    pub fn new(name: impl Into<String>, pins: Vec<Pin>, tree: RouteTree) -> Net {
        assert!(!pins.is_empty(), "net must have at least one pin");
        Net {
            name: name.into(),
            pins,
            tree,
            driver_resistance: 0.0,
        }
    }

    /// The net's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All pins; index 0 is the source.
    pub fn pins(&self) -> &[Pin] {
        &self.pins
    }

    /// The source (driver) pin.
    pub fn source(&self) -> &Pin {
        &self.pins[0]
    }

    /// The sink pins (all pins except the source).
    pub fn sinks(&self) -> &[Pin] {
        &self.pins[1..]
    }

    /// The routed topology.
    pub fn tree(&self) -> &RouteTree {
        &self.tree
    }

    /// Mutable access to the routed topology (used by routers).
    pub fn tree_mut(&mut self) -> &mut RouteTree {
        &mut self.tree
    }

    /// Checks structural invariants: the tree is valid, every pin location
    /// has a tree node carrying that pin's index, and the root carries the
    /// source pin.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violation found.
    pub fn validate(&self, width: u16, height: u16) -> Result<(), String> {
        self.tree.validate(width, height)?;
        let mut seen = vec![false; self.pins.len()];
        for node in self.tree.nodes() {
            if let Some(p) = node.pin {
                let p = p as usize;
                if p >= self.pins.len() {
                    return Err(format!(
                        "net {}: node references pin {} of {}",
                        self.name,
                        p,
                        self.pins.len()
                    ));
                }
                if seen[p] {
                    return Err(format!("net {}: pin {p} attached to two nodes", self.name));
                }
                if self.pins[p].cell != node.cell {
                    return Err(format!(
                        "net {}: pin {p} at {} attached to node at {}",
                        self.name, self.pins[p].cell, node.cell
                    ));
                }
                seen[p] = true;
            }
        }
        if let Some(missing) = seen.iter().position(|s| !s) {
            return Err(format!(
                "net {}: pin {missing} not attached to any node",
                self.name
            ));
        }
        if self.tree.node(self.tree.root()).pin != Some(0) {
            return Err(format!(
                "net {}: root node does not carry the source pin",
                self.name
            ));
        }
        Ok(())
    }

    /// Enumerates the via stacks implied by assigning this net's segments
    /// to `layers` (`layers[s]` = layer of segment `s`), as
    /// `(cell, lowest layer, highest layer)` triples. Nodes where all
    /// incident metal sits on one layer produce no stack.
    ///
    /// At a pin node the stack must extend down to `pin_layer`
    /// (conventionally 0, the pin/device layer).
    ///
    /// # Panics
    ///
    /// Panics if `layers.len() != self.tree().num_segments()`.
    pub fn via_stacks(&self, layers: &[usize]) -> Vec<(Cell, usize, usize)> {
        assert_eq!(layers.len(), self.tree.num_segments());
        let mut out = Vec::new();
        for (ni, node) in self.tree.nodes().enumerate() {
            let mut lo = usize::MAX;
            let mut hi = 0usize;
            let mut any = false;
            let mut touch = |l: usize| {
                lo = lo.min(l);
                hi = hi.max(l);
                any = true;
            };
            if let Some(seg) = self.tree.parent_segment(ni) {
                touch(layers[seg]);
            }
            for &child_seg in self.tree.child_segments(ni) {
                touch(layers[child_seg as usize]);
            }
            if let Some(p) = node.pin {
                touch(self.pins[p as usize].layer);
            }
            if any && lo < hi {
                out.push((node.cell, lo, hi));
            }
        }
        out
    }

    /// Total via count of the net under `layers`: the number of
    /// layer-boundary hops summed over all via stacks.
    ///
    /// # Panics
    ///
    /// Panics if `layers.len() != self.tree().num_segments()`.
    pub fn via_count(&self, layers: &[usize]) -> u64 {
        self.via_stacks(layers)
            .iter()
            .map(|&(_, lo, hi)| (hi - lo) as u64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grid::Cell;

    fn l_net() -> Net {
        let mut b = RouteTreeBuilder::new(Cell::new(0, 0));
        let corner = b.add_path(b.root(), &[Cell::new(2, 0)]).unwrap();
        let end = b.add_path(corner, &[Cell::new(2, 2)]).unwrap();
        b.attach_pin(b.root(), 0).unwrap();
        b.attach_pin(end, 1).unwrap();
        Net::new(
            "l",
            vec![
                Pin::source(Cell::new(0, 0), 20.0),
                Pin::sink(Cell::new(2, 2), 1.5),
            ],
            b.build().unwrap(),
        )
    }

    #[test]
    fn l_net_validates() {
        l_net().validate(8, 8).unwrap();
    }

    #[test]
    fn validate_rejects_unattached_pin() {
        let mut net = l_net();
        net.pins.push(Pin::sink(Cell::new(5, 5), 1.0));
        let err = net.validate(8, 8).unwrap_err();
        assert!(err.contains("pin 2 not attached"), "{err}");
    }

    #[test]
    fn via_stacks_same_layer_only_pin_vias() {
        let net = l_net();
        // Both segments on layer 0: pin at root is layer 0 too -> only the
        // sink-side node has no gap either. No stacks except none at all,
        // because segment layers and pin layers all equal 0.
        let stacks = net.via_stacks(&[0, 0]);
        assert!(stacks.is_empty(), "{stacks:?}");
        assert_eq!(net.via_count(&[0, 0]), 0);
    }

    mod via_properties {
        use super::*;

        /// For every assignment of the L-net: (1) via_count equals
        /// the summed stack spans, (2) every stack covers all layers
        /// of metal incident at its node, (3) stacks are at tree
        /// node cells only. The candidate space is tiny, so this is
        /// exhaustive rather than sampled.
        #[test]
        fn stacks_are_consistent() {
            for h in 0usize..2 {
                for v in 0usize..2 {
                    check_stacks(h, v);
                }
            }
        }

        fn check_stacks(h: usize, v: usize) {
            let net = l_net();
            // Horizontal candidates 0/2, vertical 1/3.
            let layers = [h * 2, 1 + v * 2];
            let stacks = net.via_stacks(&layers);
            let span_sum: u64 = stacks.iter().map(|&(_, lo, hi)| (hi - lo) as u64).sum();
            assert_eq!(net.via_count(&layers), span_sum);
            let node_cells: Vec<_> = net.tree().nodes().map(|n| n.cell).collect();
            for &(cell, lo, hi) in &stacks {
                assert!(lo < hi);
                assert!(node_cells.contains(&cell));
            }
            // The corner node's stack must span both segment layers.
            let corner = Cell::new(2, 0);
            let corner_stack = stacks.iter().find(|&&(c, _, _)| c == corner);
            let (lo_exp, hi_exp) = (layers[0].min(layers[1]), layers[0].max(layers[1]));
            match corner_stack {
                Some(&(_, lo, hi)) => {
                    assert!(lo <= lo_exp && hi >= hi_exp);
                }
                None => assert_eq!(lo_exp, hi_exp),
            }
        }
    }

    #[test]
    fn via_stacks_span_layer_gaps() {
        let net = l_net();
        // Segment 0 (horizontal) on layer 2, segment 1 (vertical) on 1.
        let stacks = net.via_stacks(&[2, 1]);
        // Root: pin layer 0 + segment layer 2 -> (0..2).
        assert!(stacks.contains(&(Cell::new(0, 0), 0, 2)));
        // Corner: segment layers 2 and 1 -> (1..2).
        assert!(stacks.contains(&(Cell::new(2, 0), 1, 2)));
        // Sink node: pin layer 0 + segment layer 1 -> (0..1).
        assert!(stacks.contains(&(Cell::new(2, 2), 0, 1)));
        assert_eq!(net.via_count(&[2, 1]), 2 + 1 + 1);
    }
}
