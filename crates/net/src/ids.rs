//! Typed arena indices: `u32` newtypes for nets, segments and nodes.
//!
//! A [`DesignArena`](crate::DesignArena) mints these ids; they are plain
//! `u32` indices in release builds. In debug builds every id additionally
//! carries the *generation tag* of the arena that minted it, and arena
//! accessors `debug_assert` the tag — so an id held across an arena
//! rebuild, or handed to a different design's arena, panics instead of
//! silently indexing the wrong design.

/// Allocates generation tags for arenas (debug builds only).
#[cfg(debug_assertions)]
pub(crate) fn next_generation() -> u32 {
    use std::sync::atomic::{AtomicU32, Ordering};
    static NEXT: AtomicU32 = AtomicU32::new(1);
    // sync: Relaxed — a process-global counter handing out unique arena
    // tags; atomicity alone gives uniqueness, and tags never order with
    // respect to other memory operations.
    NEXT.fetch_add(1, Ordering::Relaxed)
}

macro_rules! arena_id {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
        pub struct $name {
            idx: u32,
            #[cfg(debug_assertions)]
            tag: u32,
        }

        impl $name {
            /// Mints an id for slot `idx` of the arena tagged `tag`.
            /// (The tag is compiled out in release builds.)
            #[cfg_attr(not(debug_assertions), allow(unused_variables))]
            pub(crate) fn new(idx: u32, tag: u32) -> $name {
                $name {
                    idx,
                    #[cfg(debug_assertions)]
                    tag,
                }
            }

            /// The raw index. Prefer the arena accessors, which verify in
            /// debug builds that the id belongs to the arena.
            pub fn index(self) -> usize {
                self.idx as usize
            }

            /// Debug-build check that this id was minted by the arena
            /// with generation `tag`; a no-op in release builds.
            #[cfg_attr(not(debug_assertions), allow(unused_variables))]
            pub(crate) fn check(self, tag: u32) {
                #[cfg(debug_assertions)]
                debug_assert_eq!(
                    self.tag,
                    tag,
                    concat!(
                        stringify!($name),
                        " belongs to a different arena (stale id?)"
                    )
                );
            }
        }
    };
}

arena_id! {
    /// Index of a net within a [`DesignArena`](crate::DesignArena).
    NetId
}
arena_id! {
    /// Design-global segment index within a
    /// [`DesignArena`](crate::DesignArena) (nets laid out back to back).
    SegId
}
arena_id! {
    /// Design-global tree-node index within a
    /// [`DesignArena`](crate::DesignArena).
    NodeId
}
