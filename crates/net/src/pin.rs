//! Pins: the terminals a net must connect.

use grid::Cell;

/// A net terminal.
///
/// Pins live on a device layer (conventionally layer 0); any segment
/// touching a pin node on a higher layer implies a via stack down to
/// `layer`. Sink pins carry an input capacitance that loads the net.
#[derive(Copy, Clone, PartialEq, Debug)]
pub struct Pin {
    /// Tile the pin occupies.
    pub cell: Cell,
    /// Layer the pin physically sits on (0 = device layer).
    pub layer: usize,
    /// Load capacitance for sinks (fF); for the source pin this field is
    /// unused by the timing model.
    pub capacitance: f64,
}

impl Pin {
    /// Creates a pin at `cell` on the device layer with the given load.
    pub fn new(cell: Cell, capacitance: f64) -> Pin {
        Pin {
            cell,
            layer: 0,
            capacitance,
        }
    }

    /// Creates a source pin. `driver_strength` is kept for symmetry; the
    /// driver's output resistance lives on [`crate::Net`].
    pub fn source(cell: Cell, driver_strength: f64) -> Pin {
        Pin {
            cell,
            layer: 0,
            capacitance: driver_strength,
        }
    }

    /// Creates a sink pin with the given input capacitance.
    pub fn sink(cell: Cell, capacitance: f64) -> Pin {
        Pin {
            cell,
            layer: 0,
            capacitance,
        }
    }

    /// Returns this pin moved to a different physical layer.
    #[must_use]
    pub fn on_layer(mut self, layer: usize) -> Pin {
        self.layer = layer;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_fields() {
        let p = Pin::sink(Cell::new(3, 4), 2.5).on_layer(1);
        assert_eq!(p.cell, Cell::new(3, 4));
        assert_eq!(p.layer, 1);
        assert_eq!(p.capacitance, 2.5);
    }
}
