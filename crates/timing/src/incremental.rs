//! Incremental Elmore timing with `commit`/`revert`.
//!
//! [`NetTiming::compute`](crate::NetTiming::compute) walks the whole
//! routing tree; re-running it after every trial layer change makes the
//! engine's accept/reject loops O(net) per probe. [`IncrementalTiming`]
//! instead caches the per-net downstream capacitances and the subtree
//! worst-sink aggregates, so changing one segment's layer only touches
//! the path from that segment to the root:
//!
//! * the segment's wire-capacitance delta propagates to the downstream
//!   capacitance of every **ancestor** (and to the driver's total load);
//! * the subtree aggregate `rel[s]` — the worst sink delay measured from
//!   segment `s`'s entry point — is re-derived for the changed segment,
//!   its immediate children (their entry via changed) and its ancestors.
//!
//! Sibling subtrees never need revisiting: a via stack between parent
//! `p` and child `c` drives `min(C_d(p), C_d(c))` (Eqn. 3), and in a
//! tree `C_d(p) ≥ C_d(c)` always holds — the parent's downstream load
//! includes the child's plus non-negative wire and pin terms — so the
//! `min` resolves to the child-side value, which a change elsewhere in
//! the tree leaves untouched. This makes the O(path-to-root) update
//! *exact*, not an approximation.
//!
//! Every mutation is journaled as `(slot, previous value)`; [`revert`]
//! replays the journal backwards and restores the prior state *bitwise*,
//! while [`commit`] simply drops it. This is the probe API the CPLA
//! engine's per-net acceptance gate and TILA's legalization sweep use.
//!
//! [`revert`]: IncrementalTiming::revert
//! [`commit`]: IncrementalTiming::commit
//!
//! # Example
//!
//! ```
//! use grid::{Cell, Direction, GridBuilder};
//! use net::{Net, Pin, RouteTreeBuilder};
//! use timing::{IncrementalTiming, NetTiming, TimingModel};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let grid = GridBuilder::new(8, 8)
//!     .alternating_layers(4, Direction::Horizontal)
//!     .build()?;
//! let mut b = RouteTreeBuilder::new(Cell::new(0, 0));
//! let end = b.add_segment(b.root(), Cell::new(5, 0))?;
//! b.attach_pin(b.root(), 0)?;
//! b.attach_pin(end, 1)?;
//! let net = Net::new(
//!     "n",
//!     vec![Pin::source(Cell::new(0, 0), 0.0), Pin::sink(Cell::new(5, 0), 2.0)],
//!     b.build()?,
//! );
//! let model = TimingModel::from_grid(&grid);
//! let mut inc = IncrementalTiming::new(&model, &net, &[0]);
//! let before = inc.critical_delay();
//! inc.set_layer(0, 2); // probe: promote the segment
//! let after = inc.critical_delay();
//! inc.revert(); // decline the probe
//! assert_eq!(inc.critical_delay(), before);
//! assert!((after - NetTiming::compute(&grid, &net, &[2]).critical_delay()).abs() < 1e-9);
//! # Ok(())
//! # }
//! ```

use grid::Grid;
use net::Net;

/// NaN-safe exact-zero test: true for `±0.0`, false for everything else
/// including NaN — bit-identical to the bare `== 0.0` it replaces, but
/// expressed through the IEEE total order so the comparison cannot be
/// silently NaN-poisoned (audit rule A2).
fn is_zero(x: f64) -> bool {
    x.abs().total_cmp(&0.0).is_eq()
}

/// Exact `-∞` sentinel test via the IEEE total order (audit rule A2):
/// the aggregates below use `NEG_INFINITY` as the "no sink in this
/// subtree" marker, and only the exact sentinel may match.
fn is_neg_infinity(x: f64) -> bool {
    x.total_cmp(&f64::NEG_INFINITY).is_eq()
}

/// The electrical parameters timing needs, snapshotted from a [`Grid`].
///
/// [`IncrementalTiming`] holds a shared reference to one of these
/// instead of the grid itself, so callers may keep probing timing while
/// they mutate the grid's *usage* tables (capacity bookkeeping never
/// affects delay). Layer count, unit RC values and via resistances are
/// construction-time constants of a grid, so the snapshot cannot go
/// stale.
#[derive(Clone, PartialEq, Debug)]
pub struct TimingModel {
    /// Wire resistance per tile length, indexed by layer.
    unit_r: Vec<f64>,
    /// Wire capacitance per tile length, indexed by layer.
    unit_c: Vec<f64>,
    /// `step[l]`: via resistance of the single boundary `l -> l+1`.
    via_step: Vec<f64>,
}

impl TimingModel {
    /// Snapshots the timing-relevant parameters of `grid`.
    pub fn from_grid(grid: &Grid) -> TimingModel {
        let n = grid.num_layers();
        TimingModel {
            unit_r: (0..n).map(|l| grid.layer(l).unit_resistance).collect(),
            unit_c: (0..n).map(|l| grid.layer(l).unit_capacitance).collect(),
            via_step: (0..n.saturating_sub(1))
                .map(|l| grid.via_stack_resistance(l, l + 1))
                .collect(),
        }
    }

    /// Number of layers in the snapshot.
    pub fn num_layers(&self) -> usize {
        self.unit_r.len()
    }

    /// Wire resistance per tile on `layer`.
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of range.
    pub fn unit_resistance(&self, layer: usize) -> f64 {
        self.unit_r[layer]
    }

    /// Wire capacitance per tile on `layer`.
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of range.
    pub fn unit_capacitance(&self, layer: usize) -> f64 {
        self.unit_c[layer]
    }

    /// Resistance of a via stack between layers `a` and `b` (order
    /// free). Sums the per-boundary steps exactly like
    /// [`Grid::via_stack_resistance`], so results agree bitwise.
    ///
    /// # Panics
    ///
    /// Panics if a layer is out of range.
    pub fn stack_resistance(&self, a: usize, b: usize) -> f64 {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        assert!(hi < self.num_layers());
        self.via_step[lo..hi].iter().sum()
    }
}

/// One journaled scalar overwrite; replayed backwards on revert.
#[derive(Clone, Copy, Debug)]
enum Undo {
    Layer { seg: usize, prev: usize },
    Cap { seg: usize, prev: f64 },
    Rel { seg: usize, prev: f64 },
    Total { prev: f64 },
    Critical { prev: f64 },
}

/// Incrementally maintained Elmore timing of one net.
///
/// See the module-level docs above for the update scheme and the
/// exactness argument. State beyond the layer vector:
///
/// * `cap[s]` — downstream capacitance of segment `s` (excluding its
///   own wire), identical to [`NetTiming::downstream_cap`];
/// * `total_cap` — the driver's load;
/// * `rel[s]` — worst sink delay in `s`'s subtree measured from `s`'s
///   entry point (entry via + wire + the worst of the pin drop and the
///   children's `rel`), or `-inf` when the subtree holds no sink.
///
/// The net's critical delay is then
/// `R_drv·total_cap + max over root children of rel` (with a root-pin
/// sink contributing a zero-offset term), kept as a cached scalar.
///
/// [`NetTiming::downstream_cap`]: crate::NetTiming::downstream_cap
#[derive(Clone, Debug)]
pub struct IncrementalTiming<'a> {
    model: &'a TimingModel,
    net: &'a Net,
    layers: Vec<usize>,
    cap: Vec<f64>,
    rel: Vec<f64>,
    total_cap: f64,
    critical: f64,
    journal: Vec<Undo>,
}

impl<'a> IncrementalTiming<'a> {
    /// Builds the caches for `net` with segment `s` on `layers[s]`.
    ///
    /// # Panics
    ///
    /// Panics if `layers.len() != net.tree().num_segments()` or a layer
    /// index is out of range for the model.
    pub fn new(model: &'a TimingModel, net: &'a Net, layers: &[usize]) -> IncrementalTiming<'a> {
        let tree = net.tree();
        assert_eq!(layers.len(), tree.num_segments());
        let mut inc = IncrementalTiming {
            model,
            net,
            layers: layers.to_vec(),
            cap: vec![0.0; tree.num_segments()],
            rel: vec![f64::NEG_INFINITY; tree.num_segments()],
            total_cap: 0.0,
            critical: 0.0,
            journal: Vec::new(),
        };
        inc.rebuild();
        inc
    }

    /// Current layer vector.
    pub fn layers(&self) -> &[usize] {
        &self.layers
    }

    /// Downstream capacitance of segment `s` (excluding its own wire).
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    pub fn downstream_cap(&self, s: usize) -> f64 {
        self.cap[s]
    }

    /// All downstream capacitances, indexed by segment.
    pub fn downstream_caps(&self) -> &[f64] {
        &self.cap
    }

    /// Total capacitance presented to the driver.
    pub fn total_cap(&self) -> f64 {
        self.total_cap
    }

    /// The worst sink delay (`T_cp`), or 0.0 for a sink-free net.
    pub fn critical_delay(&self) -> f64 {
        self.critical
    }

    /// Whether there are uncommitted changes.
    pub fn is_dirty(&self) -> bool {
        !self.journal.is_empty()
    }

    /// Re-assigns segment `s` to `layer`, updating the caches in
    /// O(path-to-root · branching). The change is journaled: call
    /// [`IncrementalTiming::commit`] to keep it or
    /// [`IncrementalTiming::revert`] to roll back every change since the
    /// last commit.
    ///
    /// # Panics
    ///
    /// Panics if `s` or `layer` is out of range.
    pub fn set_layer(&mut self, s: usize, layer: usize) {
        assert!(layer < self.model.num_layers());
        let old = self.layers[s];
        if old == layer {
            return;
        }
        self.journal.push(Undo::Layer { seg: s, prev: old });
        self.layers[s] = layer;

        let tree = self.net.tree();
        let len = tree.segment_length(s) as f64;
        let delta_c = (self.model.unit_c[layer] - self.model.unit_c[old]) * len;
        if !is_zero(delta_c) {
            // The segment's own wire cap sits *above* its downstream
            // cap, so cap[s] is untouched; every ancestor and the
            // driver's total load shift by delta_c.
            let mut node = tree.segment(s).from as usize;
            while let Some(p) = tree.parent_segment(node) {
                self.journal.push(Undo::Cap {
                    seg: p,
                    prev: self.cap[p],
                });
                self.cap[p] += delta_c;
                node = tree.segment(p).from as usize;
            }
            self.journal.push(Undo::Total {
                prev: self.total_cap,
            });
            self.total_cap += delta_c;
        }

        // Subtree aggregates: the children's entry vias changed, then
        // the segment itself, then the chain up to the root. Sibling
        // subtrees are untouched (see the module docs).
        let to = tree.segment(s).to as usize;
        for &cs in tree.child_segments(to) {
            self.update_rel(cs as usize);
        }
        self.update_rel(s);
        let mut node = tree.segment(s).from as usize;
        while let Some(p) = tree.parent_segment(node) {
            self.update_rel(p);
            node = tree.segment(p).from as usize;
        }

        self.journal.push(Undo::Critical {
            prev: self.critical,
        });
        self.critical = self.critical_value();
    }

    /// Keeps all changes since the last commit (drops the journal).
    pub fn commit(&mut self) {
        self.journal.clear();
    }

    /// Rolls back every change since the last commit. Restoration is
    /// exact: each journal entry holds the overwritten bits.
    pub fn revert(&mut self) {
        while let Some(u) = self.journal.pop() {
            match u {
                Undo::Layer { seg, prev } => self.layers[seg] = prev,
                Undo::Cap { seg, prev } => self.cap[seg] = prev,
                Undo::Rel { seg, prev } => self.rel[seg] = prev,
                Undo::Total { prev } => self.total_cap = prev,
                Undo::Critical { prev } => self.critical = prev,
            }
        }
    }

    /// Replaces the whole layer vector and rebuilds the caches in
    /// O(net), discarding any uncommitted changes. For bulk
    /// re-assignments (e.g. after a per-net DP) this is cheaper than a
    /// chain of [`IncrementalTiming::set_layer`] calls.
    ///
    /// # Panics
    ///
    /// Panics if `layers` has the wrong length or a layer is out of
    /// range.
    pub fn reset(&mut self, layers: &[usize]) {
        assert_eq!(layers.len(), self.layers.len());
        self.layers.clear();
        self.layers.extend_from_slice(layers);
        self.journal.clear();
        self.rebuild();
    }

    /// `(pin index, delay)` for every sink, ordered by pin index —
    /// computed on demand in O(net) from the cached capacitances,
    /// mirroring [`NetTiming::sink_delays`].
    ///
    /// [`NetTiming::sink_delays`]: crate::NetTiming::sink_delays
    pub fn sink_delays(&self) -> Vec<(usize, f64)> {
        let tree = self.net.tree();
        let root = tree.root();
        let mut node_delay = vec![0.0f64; tree.num_nodes()];
        node_delay[root] = self.net.driver_resistance * self.total_cap;
        for s in tree.preorder_segments() {
            let seg = tree.segment(s);
            let (u, v) = (seg.from as usize, seg.to as usize);
            let (via, wire) = self.segment_terms(s);
            node_delay[v] = node_delay[u] + via + wire;
        }
        let mut out = Vec::with_capacity(self.net.pins().len() - 1);
        for (ni, node) in tree.nodes().enumerate() {
            let Some(p) = node.pin else { continue };
            if p == 0 {
                continue;
            }
            let pin = &self.net.pins()[p as usize];
            let metal = match tree.parent_segment(ni) {
                Some(ps) => self.layers[ps],
                None => pin.layer,
            };
            let drop = self.model.stack_resistance(pin.layer, metal) * pin.capacitance;
            out.push((p as usize, node_delay[ni] + drop));
        }
        out.sort_by_key(|&(p, _)| p);
        out
    }

    /// Full O(net) rebuild of caps, aggregates and the critical delay.
    fn rebuild(&mut self) {
        let tree = self.net.tree();
        let node_pin_cap = |node: usize| -> f64 {
            match tree.node(node).pin {
                Some(0) | None => 0.0,
                Some(p) => self.net.pins()[p as usize].capacitance,
            }
        };
        for s in tree.postorder_segments() {
            let child = tree.segment(s).to as usize;
            let mut cd = node_pin_cap(child);
            for &cs in tree.child_segments(child) {
                let cs = cs as usize;
                let len = tree.segment_length(cs) as f64;
                cd += self.model.unit_c[self.layers[cs]] * len + self.cap[cs];
            }
            self.cap[s] = cd;
        }
        let root = tree.root();
        let mut total = node_pin_cap(root);
        for &cs in tree.child_segments(root) {
            let cs = cs as usize;
            let len = tree.segment_length(cs) as f64;
            total += self.model.unit_c[self.layers[cs]] * len + self.cap[cs];
        }
        self.total_cap = total;
        for s in tree.postorder_segments() {
            self.rel[s] = self.rel_value(s);
        }
        self.critical = self.critical_value();
    }

    /// Entry-via and wire delay of segment `s` under the current state
    /// (the two per-segment terms of the Elmore recursion).
    fn segment_terms(&self, s: usize) -> (f64, f64) {
        let tree = self.net.tree();
        let from = tree.segment(s).from as usize;
        let lay = self.layers[s];
        let len = tree.segment_length(s) as f64;
        let (entry_layer, entry_cd) = match tree.parent_segment(from) {
            Some(ps) => (self.layers[ps], self.cap[ps]),
            None => (self.net.source().layer, self.total_cap),
        };
        let via = self.model.stack_resistance(entry_layer, lay) * entry_cd.min(self.cap[s]);
        let r = self.model.unit_r[lay] * len;
        let c = self.model.unit_c[lay] * len;
        (via, r * (c / 2.0 + self.cap[s]))
    }

    /// Journals and refreshes `rel[s]`.
    fn update_rel(&mut self, s: usize) {
        self.journal.push(Undo::Rel {
            seg: s,
            prev: self.rel[s],
        });
        self.rel[s] = self.rel_value(s);
    }

    /// Worst sink delay below `s`, measured from its entry point:
    /// `via + wire + max(pin drop at to(s), max children rel)`, or
    /// `-inf` when the subtree is sink-free.
    fn rel_value(&self, s: usize) -> f64 {
        let tree = self.net.tree();
        let to = tree.segment(s).to as usize;
        let mut below = f64::NEG_INFINITY;
        if let Some(p) = tree.node(to).pin {
            if p != 0 {
                let pin = &self.net.pins()[p as usize];
                below = self.model.stack_resistance(pin.layer, self.layers[s]) * pin.capacitance;
            }
        }
        for &cs in tree.child_segments(to) {
            below = below.max(self.rel[cs as usize]);
        }
        if is_neg_infinity(below) {
            return f64::NEG_INFINITY;
        }
        let (via, wire) = self.segment_terms(s);
        via + wire + below
    }

    /// Critical delay from the aggregates (matches
    /// [`NetTiming::critical_delay`], including the 0.0 floor).
    ///
    /// [`NetTiming::critical_delay`]: crate::NetTiming::critical_delay
    fn critical_value(&self) -> f64 {
        let tree = self.net.tree();
        let root = tree.root();
        let mut best = f64::NEG_INFINITY;
        // A sink pin at the root drops straight from its own layer:
        // its delay is exactly the driver term.
        if let Some(p) = tree.node(root).pin {
            if p != 0 {
                best = 0.0;
            }
        }
        for &cs in tree.child_segments(root) {
            best = best.max(self.rel[cs as usize]);
        }
        if is_neg_infinity(best) {
            return 0.0;
        }
        (self.net.driver_resistance * self.total_cap + best).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetTiming;
    use grid::{Cell, Direction, GridBuilder};
    use net::{Net, Pin, RouteTreeBuilder};

    fn grid() -> Grid {
        GridBuilder::new(16, 16)
            .alternating_layers(6, Direction::Horizontal)
            .build()
            .unwrap()
    }

    /// Y net: trunk (0,0)->(4,0), branch to (4,6), branch to (8,0).
    fn y_net() -> Net {
        let mut b = RouteTreeBuilder::new(Cell::new(0, 0));
        let j = b.add_segment(b.root(), Cell::new(4, 0)).unwrap();
        let far = b.add_segment(j, Cell::new(4, 6)).unwrap();
        let near = b.add_segment(j, Cell::new(8, 0)).unwrap();
        b.attach_pin(b.root(), 0).unwrap();
        b.attach_pin(far, 1).unwrap();
        b.attach_pin(near, 2).unwrap();
        Net::new(
            "y",
            vec![
                Pin::source(Cell::new(0, 0), 0.0),
                Pin::sink(Cell::new(4, 6), 2.0),
                Pin::sink(Cell::new(8, 0), 1.0),
            ],
            b.build().unwrap(),
        )
    }

    fn assert_matches(inc: &IncrementalTiming, g: &Grid, net: &Net) {
        let fresh = NetTiming::compute(g, net, inc.layers());
        let tol = |a: f64| 1e-9 * a.abs().max(1.0);
        for s in 0..net.tree().num_segments() {
            let (a, b) = (inc.downstream_cap(s), fresh.downstream_cap(s));
            assert!((a - b).abs() <= tol(b), "cap[{s}]: {a} vs {b}");
        }
        let (a, b) = (inc.total_cap(), fresh.total_cap());
        assert!((a - b).abs() <= tol(b), "total: {a} vs {b}");
        let (a, b) = (inc.critical_delay(), fresh.critical_delay());
        assert!((a - b).abs() <= tol(b), "critical: {a} vs {b}");
        let sinks = inc.sink_delays();
        assert_eq!(sinks.len(), fresh.sink_delays().len());
        for (&(p, d), &(fp, fd)) in sinks.iter().zip(fresh.sink_delays()) {
            assert_eq!(p, fp);
            assert!((d - fd).abs() <= tol(fd), "sink {p}: {d} vs {fd}");
        }
    }

    #[test]
    fn fresh_build_matches_net_timing() {
        let g = grid();
        let net = y_net();
        let model = TimingModel::from_grid(&g);
        let inc = IncrementalTiming::new(&model, &net, &[0, 1, 0]);
        assert_matches(&inc, &g, &net);
    }

    #[test]
    fn single_change_matches_recompute() {
        let g = grid();
        let net = y_net();
        let model = TimingModel::from_grid(&g);
        let mut inc = IncrementalTiming::new(&model, &net, &[0, 1, 0]);
        inc.set_layer(1, 5); // promote the far branch
        assert_matches(&inc, &g, &net);
        inc.commit();
        inc.set_layer(0, 4); // promote the trunk
        inc.set_layer(2, 2);
        assert_matches(&inc, &g, &net);
    }

    #[test]
    fn revert_restores_bitwise() {
        let g = grid();
        let net = y_net();
        let model = TimingModel::from_grid(&g);
        let mut inc = IncrementalTiming::new(&model, &net, &[0, 1, 0]);
        let caps: Vec<f64> = inc.downstream_caps().to_vec();
        let total = inc.total_cap();
        let critical = inc.critical_delay();
        inc.set_layer(0, 2);
        inc.set_layer(1, 3);
        inc.set_layer(1, 5);
        assert!(inc.is_dirty());
        inc.revert();
        assert!(!inc.is_dirty());
        // Bitwise equality, not approximate: the journal holds the
        // exact overwritten values.
        assert_eq!(inc.downstream_caps(), caps.as_slice());
        assert_eq!(inc.total_cap().to_bits(), total.to_bits());
        assert_eq!(inc.critical_delay().to_bits(), critical.to_bits());
        assert_eq!(inc.layers(), &[0, 1, 0]);
    }

    #[test]
    fn commit_then_revert_only_rolls_back_to_commit_point() {
        let g = grid();
        let net = y_net();
        let model = TimingModel::from_grid(&g);
        let mut inc = IncrementalTiming::new(&model, &net, &[0, 1, 0]);
        inc.set_layer(1, 3);
        inc.commit();
        let committed = inc.critical_delay();
        inc.set_layer(0, 2);
        inc.revert();
        assert_eq!(inc.critical_delay().to_bits(), committed.to_bits());
        assert_eq!(inc.layers(), &[0, 3, 0]);
        assert_matches(&inc, &g, &net);
    }

    #[test]
    fn noop_change_journals_nothing() {
        let g = grid();
        let net = y_net();
        let model = TimingModel::from_grid(&g);
        let mut inc = IncrementalTiming::new(&model, &net, &[0, 1, 0]);
        inc.set_layer(1, 1);
        assert!(!inc.is_dirty());
    }

    #[test]
    fn reset_matches_fresh_build() {
        let g = grid();
        let net = y_net();
        let model = TimingModel::from_grid(&g);
        let mut inc = IncrementalTiming::new(&model, &net, &[0, 1, 0]);
        inc.set_layer(0, 2); // pending change is discarded by reset
        inc.reset(&[4, 5, 2]);
        assert!(!inc.is_dirty());
        assert_matches(&inc, &g, &net);
    }

    #[test]
    fn model_matches_grid_parameters() {
        let g = grid();
        let m = TimingModel::from_grid(&g);
        assert_eq!(m.num_layers(), g.num_layers());
        for l in 0..g.num_layers() {
            assert_eq!(m.unit_resistance(l), g.layer(l).unit_resistance);
            assert_eq!(m.unit_capacitance(l), g.layer(l).unit_capacitance);
            for h in l..g.num_layers() {
                assert_eq!(
                    m.stack_resistance(l, h).to_bits(),
                    g.via_stack_resistance(l, h).to_bits(),
                    "stack {l}..{h}"
                );
            }
        }
    }

    #[test]
    fn sink_free_net_has_zero_critical_delay() {
        let g = grid();
        let mut b = RouteTreeBuilder::new(Cell::new(0, 0));
        b.add_segment(b.root(), Cell::new(3, 0)).unwrap();
        b.attach_pin(b.root(), 0).unwrap();
        let net = Net::new(
            "stub",
            vec![Pin::source(Cell::new(0, 0), 0.0)],
            b.build().unwrap(),
        );
        let model = TimingModel::from_grid(&g);
        let mut inc = IncrementalTiming::new(&model, &net, &[0]);
        assert_eq!(inc.critical_delay(), 0.0);
        inc.set_layer(0, 4);
        assert_eq!(inc.critical_delay(), 0.0);
        assert_matches(&inc, &g, &net);
    }
}
