//! Netlist-level timing reports.

use grid::Grid;
use net::{Assignment, Netlist};

use crate::NetTiming;

/// Timing of a whole netlist under one assignment.
///
/// Produced by [`analyze`]; holds one [`NetTiming`] per analyzed net
/// (either all nets, or an arbitrary subset via [`analyze_nets`]).
#[derive(Clone, PartialEq, Debug)]
pub struct TimingReport {
    /// `(net index, timing)` pairs in ascending net order.
    timings: Vec<(usize, NetTiming)>,
}

impl TimingReport {
    /// Timing of net `net_index`.
    ///
    /// # Panics
    ///
    /// Panics if the net was not part of the analysis.
    pub fn net(&self, net_index: usize) -> &NetTiming {
        self.try_net(net_index)
            .unwrap_or_else(|| panic!("net {net_index} not analyzed"))
    }

    /// Timing of net `net_index`, or `None` if it was not analyzed.
    pub fn try_net(&self, net_index: usize) -> Option<&NetTiming> {
        self.timings
            .binary_search_by_key(&net_index, |&(i, _)| i)
            .ok()
            .map(|pos| &self.timings[pos].1)
    }

    /// Iterates over `(net index, timing)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &NetTiming)> {
        self.timings.iter().map(|(i, t)| (*i, t))
    }

    /// Number of analyzed nets.
    pub fn len(&self) -> usize {
        self.timings.len()
    }

    /// Whether the report is empty.
    pub fn is_empty(&self) -> bool {
        self.timings.is_empty()
    }

    /// Mean critical-path delay over the analyzed nets (the paper's
    /// `Avg(T_cp)`), 0.0 when empty.
    pub fn avg_critical_delay(&self) -> f64 {
        if self.timings.is_empty() {
            return 0.0;
        }
        self.timings
            .iter()
            .map(|(_, t)| t.critical_delay())
            .sum::<f64>()
            / self.timings.len() as f64
    }

    /// Maximum critical-path delay over the analyzed nets (the paper's
    /// `Max(T_cp)`), 0.0 when empty.
    pub fn max_critical_delay(&self) -> f64 {
        self.timings
            .iter()
            .map(|(_, t)| t.critical_delay())
            .fold(0.0f64, f64::max)
    }

    /// Every sink-pin delay of every analyzed net (for Fig. 1-style
    /// distributions).
    pub fn all_sink_delays(&self) -> Vec<f64> {
        self.timings
            .iter()
            .flat_map(|(_, t)| t.sink_delays().iter().map(|&(_, d)| d))
            .collect()
    }

    /// Net indices sorted by decreasing critical delay.
    pub fn nets_by_criticality(&self) -> Vec<usize> {
        let mut order: Vec<(usize, f64)> = self
            .timings
            .iter()
            .map(|(i, t)| (*i, t.critical_delay()))
            .collect();
        order.sort_by(|a, b| b.1.total_cmp(&a.1));
        order.into_iter().map(|(i, _)| i).collect()
    }
}

/// Analyzes every net of the netlist.
///
/// # Panics
///
/// Panics if the assignment does not match the netlist (wrong shapes or
/// out-of-range layers).
pub fn analyze(grid: &Grid, netlist: &Netlist, assignment: &Assignment) -> TimingReport {
    analyze_nets(grid, netlist, assignment, 0..netlist.len())
}

/// Analyzes an arbitrary subset of nets (e.g. only the released critical
/// nets, which is what the incremental flow re-times each iteration).
///
/// # Panics
///
/// Panics if a net index is out of range or the assignment mismatches.
pub fn analyze_nets(
    grid: &Grid,
    netlist: &Netlist,
    assignment: &Assignment,
    nets: impl IntoIterator<Item = usize>,
) -> TimingReport {
    let mut indices: Vec<usize> = nets.into_iter().collect();
    indices.sort_unstable();
    indices.dedup();
    let timings = indices
        .into_iter()
        .map(|i| {
            (
                i,
                NetTiming::compute(grid, netlist.net(i), assignment.net_layers(i)),
            )
        })
        .collect();
    TimingReport { timings }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grid::{Cell, Direction, GridBuilder};
    use net::{Net, Pin, RouteTreeBuilder};

    fn fixture() -> (Grid, Netlist, Assignment) {
        let grid = GridBuilder::new(16, 16)
            .alternating_layers(4, Direction::Horizontal)
            .build()
            .unwrap();
        let mut nl = Netlist::new();
        for (i, len) in [3u16, 8, 5].iter().enumerate() {
            let y = i as u16;
            let mut b = RouteTreeBuilder::new(Cell::new(0, y));
            let end = b.add_segment(b.root(), Cell::new(*len, y)).unwrap();
            b.attach_pin(b.root(), 0).unwrap();
            b.attach_pin(end, 1).unwrap();
            nl.push(Net::new(
                format!("n{i}"),
                vec![
                    Pin::source(Cell::new(0, y), 0.0),
                    Pin::sink(Cell::new(*len, y), 1.0),
                ],
                b.build().unwrap(),
            ));
        }
        let a = Assignment::lowest_layers(&nl, &grid);
        (grid, nl, a)
    }

    #[test]
    fn criticality_order_follows_length() {
        let (g, nl, a) = fixture();
        let r = analyze(&g, &nl, &a);
        // Net 1 (length 8) is most critical, then net 2 (5), then 0 (3).
        assert_eq!(r.nets_by_criticality(), vec![1, 2, 0]);
        assert!(r.max_critical_delay() >= r.avg_critical_delay());
    }

    #[test]
    fn subset_analysis_only_covers_requested() {
        let (g, nl, a) = fixture();
        let r = analyze_nets(&g, &nl, &a, [2, 0, 2]);
        assert_eq!(r.len(), 2);
        assert!(r.try_net(1).is_none());
        assert!(r.try_net(0).is_some());
        assert_eq!(r.all_sink_delays().len(), 2);
    }

    #[test]
    #[should_panic(expected = "not analyzed")]
    fn missing_net_panics() {
        let (g, nl, a) = fixture();
        let r = analyze_nets(&g, &nl, &a, [0]);
        let _ = r.net(1);
    }

    #[test]
    fn empty_report_yields_zero_stats() {
        let (g, nl, a) = fixture();
        let r = analyze_nets(&g, &nl, &a, []);
        assert!(r.is_empty());
        assert_eq!(r.avg_critical_delay(), 0.0);
        assert_eq!(r.max_critical_delay(), 0.0);
    }
}
