//! Delay-distribution histograms (Fig. 1 of the paper).

use std::fmt;

/// A fixed-bin histogram over pin delays.
///
/// Fig. 1 of the paper plots the number of critical-net sink pins per
/// delay bin on a logarithmic count axis; this type produces exactly that
/// data series.
///
/// NaN delays never reach a bin: `(NaN as usize)` is `0`, so counting
/// them would silently inflate the lowest-delay bin and skew the shared
/// `[min, max]` range. They are instead skipped and tallied in
/// [`DelayHistogram::nan_count`].
#[derive(Clone, PartialEq, Debug)]
pub struct DelayHistogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    /// Samples that were NaN and therefore excluded from every bin.
    nan: u64,
}

impl DelayHistogram {
    /// Builds a histogram of `delays` with `bins` equal-width bins
    /// spanning `[min, max]` of the finite data. Values equal to the
    /// maximum land in the last bin. NaN samples are excluded from both
    /// the range and the bins and reported via
    /// [`DelayHistogram::nan_count`].
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0`.
    pub fn from_delays(delays: &[f64], bins: usize) -> DelayHistogram {
        assert!(bins > 0, "histogram needs at least one bin");
        let nan = delays.iter().filter(|d| d.is_nan()).count() as u64;
        if delays.len() as u64 == nan {
            return DelayHistogram {
                lo: 0.0,
                hi: 0.0,
                counts: vec![0; bins],
                nan,
            };
        }
        let lo = delays
            .iter()
            .copied()
            .filter(|d| !d.is_nan())
            .fold(f64::INFINITY, f64::min);
        let hi = delays
            .iter()
            .copied()
            .filter(|d| !d.is_nan())
            .fold(f64::NEG_INFINITY, f64::max);
        let mut counts = vec![0u64; bins];
        let span = (hi - lo).max(f64::MIN_POSITIVE);
        for &d in delays {
            if d.is_nan() {
                continue;
            }
            let mut b = ((d - lo) / span * bins as f64) as usize;
            if b >= bins {
                b = bins - 1;
            }
            counts[b] += 1;
        }
        DelayHistogram {
            lo,
            hi,
            counts,
            nan,
        }
    }

    /// Builds a histogram over an explicit `[lo, hi]` range so that two
    /// distributions (e.g. TILA vs CPLA) share comparable bins. Finite
    /// values outside the range are clamped into the boundary bins; NaN
    /// samples are skipped and reported via
    /// [`DelayHistogram::nan_count`].
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `hi < lo`.
    pub fn with_range(delays: &[f64], lo: f64, hi: f64, bins: usize) -> DelayHistogram {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(hi >= lo, "invalid range {lo}..{hi}");
        let mut counts = vec![0u64; bins];
        let mut nan = 0u64;
        let span = (hi - lo).max(f64::MIN_POSITIVE);
        for &d in delays {
            if d.is_nan() {
                nan += 1;
                continue;
            }
            let b = (((d - lo) / span * bins as f64) as isize).clamp(0, bins as isize - 1) as usize;
            counts[b] += 1;
        }
        DelayHistogram {
            lo,
            hi,
            counts,
            nan,
        }
    }

    /// Bin counts, low delay first.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Number of NaN samples that were excluded from the bins.
    pub fn nan_count(&self) -> u64 {
        self.nan
    }

    /// `(bin center, count)` series for plotting. NaN samples are not
    /// part of the series; check [`DelayHistogram::nan_count`] before
    /// treating the series as the full sample set.
    pub fn series(&self) -> Vec<(f64, u64)> {
        let bins = self.counts.len();
        let width = (self.hi - self.lo) / bins as f64;
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| (self.lo + (i as f64 + 0.5) * width, c))
            .collect()
    }

    /// Lower bound of the histogram range.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper bound of the histogram range.
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Total number of binned samples (NaN samples excluded).
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Index of the highest non-empty bin, or `None` when empty — a proxy
    /// for "how far the distribution's tail reaches", which is the
    /// quantity Fig. 1 contrasts between TILA and CPLA.
    pub fn tail_bin(&self) -> Option<usize> {
        self.counts.iter().rposition(|&c| c > 0)
    }
}

impl fmt::Display for DelayHistogram {
    /// Renders an ASCII bar chart, one bin per line, with a
    /// logarithmically scaled bar like the paper's log-count axis. A
    /// trailing `NaN` row appears only when NaN samples were excluded.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (center, count) in self.series() {
            let bar = if count == 0 {
                0
            } else {
                (count as f64).log2().ceil() as usize + 1
            };
            writeln!(f, "{center:>14.1} | {:<12} {count}", "#".repeat(bar))?;
        }
        if self.nan > 0 {
            writeln!(f, "{:>14} | excluded     {}", "NaN", self.nan)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_sum_to_samples() {
        let d = [1.0, 2.0, 3.0, 4.0, 10.0];
        let h = DelayHistogram::from_delays(&d, 4);
        assert_eq!(h.total(), 5);
        // Max lands in last bin.
        assert_eq!(*h.counts().last().unwrap(), 1);
    }

    #[test]
    fn empty_input_is_all_zero() {
        let h = DelayHistogram::from_delays(&[], 8);
        assert_eq!(h.total(), 0);
        assert_eq!(h.tail_bin(), None);
        assert_eq!(h.nan_count(), 0);
    }

    #[test]
    fn nan_is_excluded_not_binned_low() {
        // Regression: `(NaN as usize)` is 0, so NaN used to be counted
        // in bin 0 and poison the auto range via the min/max folds.
        let h = DelayHistogram::from_delays(&[1.0, f64::NAN, 2.0], 4);
        assert_eq!(h.nan_count(), 1);
        assert_eq!(h.total(), 2);
        assert_eq!(h.counts()[0], 1); // only the real 1.0 sample
        assert_eq!(h.lo(), 1.0);
        assert_eq!(h.hi(), 2.0);
    }

    #[test]
    fn nan_is_excluded_from_shared_range() {
        let h = DelayHistogram::with_range(&[0.5, f64::NAN, f64::NAN], 0.0, 1.0, 2);
        assert_eq!(h.nan_count(), 2);
        assert_eq!(h.counts(), &[0, 1]);
        assert_eq!(h.total(), 1);
    }

    #[test]
    fn all_nan_input_is_all_zero() {
        let h = DelayHistogram::from_delays(&[f64::NAN, f64::NAN], 4);
        assert_eq!(h.total(), 0);
        assert_eq!(h.nan_count(), 2);
        assert_eq!(h.tail_bin(), None);
        // Degenerate range collapses to [0, 0] like the empty case.
        assert_eq!(h.lo(), 0.0);
        assert_eq!(h.hi(), 0.0);
    }

    #[test]
    fn display_reports_excluded_nans() {
        let h = DelayHistogram::from_delays(&[1.0, f64::NAN, 2.0], 3);
        let s = h.to_string();
        assert_eq!(s.lines().count(), 4); // 3 bins + NaN row
        assert!(s.contains("NaN"), "{s}");
        // No NaN samples, no NaN row.
        let clean = DelayHistogram::from_delays(&[1.0, 2.0], 3).to_string();
        assert_eq!(clean.lines().count(), 3);
        assert!(!clean.contains("NaN"), "{clean}");
    }

    #[test]
    fn shared_range_clamps_outliers() {
        let h = DelayHistogram::with_range(&[-5.0, 0.5, 99.0], 0.0, 1.0, 2);
        assert_eq!(h.counts(), &[1, 2]); // -5 clamps low, 99 clamps high
    }

    #[test]
    fn tail_bin_tracks_worst_delay() {
        let short = DelayHistogram::with_range(&[1.0, 2.0], 0.0, 10.0, 10);
        let long = DelayHistogram::with_range(&[1.0, 9.5], 0.0, 10.0, 10);
        assert!(long.tail_bin().unwrap() > short.tail_bin().unwrap());
    }

    #[test]
    fn constant_data_lands_in_one_bin() {
        let h = DelayHistogram::from_delays(&[3.0, 3.0, 3.0], 4);
        assert_eq!(h.total(), 3);
        assert_eq!(h.counts().iter().filter(|&&c| c > 0).count(), 1);
    }

    #[test]
    fn display_renders_one_line_per_bin() {
        let h = DelayHistogram::from_delays(&[1.0, 2.0], 3);
        let s = h.to_string();
        assert_eq!(s.lines().count(), 3);
    }
}
