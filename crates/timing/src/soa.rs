//! Design-wide Elmore cache in flat arrays.
//!
//! [`NetTiming`](crate::NetTiming) allocates three result vectors per
//! net, which is fine for the released subset but wasteful when timing
//! an entire million-segment design (the whole-design analysis that
//! feeds critical-net selection). [`DesignTiming`] runs the identical
//! per-net recursions — same traversal order, same arithmetic, so every
//! delay is bit-identical to `NetTiming` — but writes results into
//! design-global arrays laid out by a [`DesignArena`]'s CSR ranges:
//! one `downstream_cap` slot per global segment, one delay per global
//! node, one critical delay per net.

use grid::Grid;
use net::{Assignment, DesignArena, Netlist};

/// Elmore timing of a whole design under one assignment, stored as
/// flat per-segment / per-node / per-net arrays.
#[derive(Clone, PartialEq, Debug)]
pub struct DesignTiming {
    /// CSR copy: net `n` owns segments `seg_start[n]..seg_start[n+1]`.
    seg_start: Vec<u32>,
    /// CSR copy: net `n` owns nodes `node_start[n]..node_start[n+1]`.
    node_start: Vec<u32>,
    /// Downstream capacitance per design-global segment.
    downstream_cap: Vec<f64>,
    /// Elmore delay per design-global tree node.
    node_delay: Vec<f64>,
    /// Critical-path delay per net (0.0 for sink-free nets).
    critical: Vec<f64>,
    /// Driver load per net.
    total_cap: Vec<f64>,
}

impl DesignTiming {
    /// Times every net of the design, writing into flat arrays sized by
    /// `arena`'s layout.
    ///
    /// # Panics
    ///
    /// Panics if `arena` does not describe `netlist` (mismatched segment
    /// counts) or the assignment mismatches the netlist.
    pub fn compute(
        grid: &Grid,
        netlist: &Netlist,
        arena: &DesignArena,
        assignment: &Assignment,
    ) -> DesignTiming {
        assert_eq!(
            arena.num_segments(),
            netlist.num_segments(),
            "arena does not describe this netlist"
        );
        let mut downstream_cap = vec![0.0f64; arena.num_segments()];
        let mut node_delay = vec![0.0f64; arena.num_nodes()];
        let mut critical = Vec::with_capacity(netlist.len());
        let mut total_caps = Vec::with_capacity(netlist.len());
        let mut seg_start = Vec::with_capacity(netlist.len() + 1);
        let mut node_start = Vec::with_capacity(netlist.len() + 1);
        seg_start.push(0u32);
        node_start.push(0u32);
        // Reused per-net sink scratch (pin index, delay).
        let mut sinks: Vec<(usize, f64)> = Vec::new();

        for (ni, net) in netlist.nets().iter().enumerate() {
            let tree = net.tree();
            let layers = assignment.net_layers(ni);
            let sb = arena.seg_base(ni);
            let nb = arena.node_base(ni);
            let cap = &mut downstream_cap[sb..sb + tree.num_segments()];
            let delay = &mut node_delay[nb..nb + tree.num_nodes()];

            // Bottom-up downstream capacitance — the recursion of
            // `NetTiming::compute`, writing into the design-global slice.
            let node_pin_cap = |node: usize| -> f64 {
                match tree.node(node).pin {
                    Some(0) | None => 0.0,
                    Some(p) => net.pins()[p as usize].capacitance,
                }
            };
            for s in tree.postorder_segments() {
                let child_node = tree.segment(s).to as usize;
                let mut cd = node_pin_cap(child_node);
                for &cs in tree.child_segments(child_node) {
                    let cs = cs as usize;
                    let len = tree.segment_length(cs) as f64;
                    let wire_cap = grid.layer(layers[cs]).unit_capacitance * len;
                    cd += wire_cap + cap[cs];
                }
                cap[s] = cd;
            }
            let root = tree.root();
            let mut total_cap = node_pin_cap(root);
            for &cs in tree.child_segments(root) {
                let cs = cs as usize;
                let len = tree.segment_length(cs) as f64;
                total_cap += grid.layer(layers[cs]).unit_capacitance * len + cap[cs];
            }

            // Top-down node delays.
            delay[root] = net.driver_resistance * total_cap;
            for s in tree.preorder_segments() {
                let seg = tree.segment(s);
                let (u, v) = (seg.from as usize, seg.to as usize);
                let len = tree.segment_length(s) as f64;
                let lay = grid.layer(layers[s]);
                let r = lay.unit_resistance * len;
                let c = lay.unit_capacitance * len;
                let entry_layer = match tree.parent_segment(u) {
                    Some(ps) => layers[ps],
                    None => net.source().layer,
                };
                let (lo, hi) = if entry_layer <= layers[s] {
                    (entry_layer, layers[s])
                } else {
                    (layers[s], entry_layer)
                };
                let via_r = grid.via_stack_resistance(lo, hi);
                let entry_cd = match tree.parent_segment(u) {
                    Some(ps) => cap[ps],
                    None => total_cap,
                };
                let via_delay = via_r * entry_cd.min(cap[s]);
                delay[v] = delay[u] + via_delay + r * (c / 2.0 + cap[s]);
            }

            // Sink delays (with the pin drop-via), reduced straight to
            // the net's critical delay.
            sinks.clear();
            for (nn, node) in tree.nodes().enumerate() {
                let Some(p) = node.pin else { continue };
                if p == 0 {
                    continue;
                }
                let pin = &net.pins()[p as usize];
                let metal_layer = match tree.parent_segment(nn) {
                    Some(ps) => layers[ps],
                    None => pin.layer,
                };
                let (lo, hi) = if pin.layer <= metal_layer {
                    (pin.layer, metal_layer)
                } else {
                    (metal_layer, pin.layer)
                };
                let drop_delay = grid.via_stack_resistance(lo, hi) * pin.capacitance;
                sinks.push((p as usize, delay[nn] + drop_delay));
            }
            sinks.sort_by_key(|&(p, _)| p);
            critical.push(sinks.iter().map(|&(_, d)| d).fold(0.0f64, f64::max));
            total_caps.push(total_cap);
            seg_start.push((sb + tree.num_segments()) as u32);
            node_start.push((nb + tree.num_nodes()) as u32);
        }

        DesignTiming {
            seg_start,
            node_start,
            downstream_cap,
            node_delay,
            critical,
            total_cap: total_caps,
        }
    }

    /// Number of timed nets.
    pub fn num_nets(&self) -> usize {
        self.critical.len()
    }

    /// Critical-path delay of net `n` (0.0 for sink-free nets).
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range.
    pub fn critical_delay(&self, n: usize) -> f64 {
        self.critical[n]
    }

    /// All critical delays, indexed by net.
    pub fn critical_delays(&self) -> &[f64] {
        &self.critical
    }

    /// Downstream capacitances of net `n`, indexed by within-net
    /// segment.
    pub fn downstream_caps(&self, n: usize) -> &[f64] {
        let lo = self.seg_start[n] as usize;
        let hi = self.seg_start[n + 1] as usize;
        &self.downstream_cap[lo..hi]
    }

    /// Elmore node delays of net `n`, indexed by within-net node.
    pub fn node_delays(&self, n: usize) -> &[f64] {
        let lo = self.node_start[n] as usize;
        let hi = self.node_start[n + 1] as usize;
        &self.node_delay[lo..hi]
    }

    /// Driver load of net `n`.
    pub fn total_cap(&self, n: usize) -> f64 {
        self.total_cap[n]
    }

    /// Mean critical delay over all nets (0.0 when empty).
    pub fn avg_critical_delay(&self) -> f64 {
        if self.critical.is_empty() {
            return 0.0;
        }
        self.critical.iter().sum::<f64>() / self.critical.len() as f64
    }

    /// Worst critical delay over all nets (0.0 when empty).
    pub fn max_critical_delay(&self) -> f64 {
        self.critical.iter().copied().fold(0.0f64, f64::max)
    }

    /// Net indices sorted by decreasing critical delay — the same
    /// comparator and pre-sort order as
    /// [`TimingReport::nets_by_criticality`](crate::TimingReport::nets_by_criticality),
    /// so selection built on either is identical.
    pub fn nets_by_criticality(&self) -> Vec<usize> {
        let mut order: Vec<(usize, f64)> = self.critical.iter().copied().enumerate().collect();
        order.sort_by(|a, b| b.1.total_cmp(&a.1));
        order.into_iter().map(|(i, _)| i).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetTiming;
    use grid::{Cell, Direction, GridBuilder};
    use net::{Net, Pin, RouteTreeBuilder};

    /// A small design with a straight net and a Y-shaped net.
    fn fixture() -> (Grid, Netlist, Assignment) {
        let grid = GridBuilder::new(16, 16)
            .alternating_layers(4, Direction::Horizontal)
            .build()
            .unwrap();
        let mut nl = Netlist::new();

        let mut b = RouteTreeBuilder::new(Cell::new(0, 0));
        let end = b.add_segment(b.root(), Cell::new(6, 0)).unwrap();
        b.attach_pin(b.root(), 0).unwrap();
        b.attach_pin(end, 1).unwrap();
        nl.push(Net::new(
            "straight",
            vec![
                Pin::source(Cell::new(0, 0), 0.0),
                Pin::sink(Cell::new(6, 0), 2.0),
            ],
            b.build().unwrap(),
        ));

        let mut b = RouteTreeBuilder::new(Cell::new(0, 4));
        let j = b.add_segment(b.root(), Cell::new(4, 4)).unwrap();
        let far = b.add_segment(j, Cell::new(4, 9)).unwrap();
        let near = b.add_segment(j, Cell::new(7, 4)).unwrap();
        b.attach_pin(b.root(), 0).unwrap();
        b.attach_pin(far, 1).unwrap();
        b.attach_pin(near, 2).unwrap();
        let mut y = Net::new(
            "y",
            vec![
                Pin::source(Cell::new(0, 4), 0.0),
                Pin::sink(Cell::new(4, 9), 2.0),
                Pin::sink(Cell::new(7, 4), 1.0),
            ],
            b.build().unwrap(),
        );
        y.driver_resistance = 3.0;
        nl.push(y);

        let a = Assignment::lowest_layers(&nl, &grid);
        (grid, nl, a)
    }

    #[test]
    fn bitwise_matches_per_net_timing() {
        let (g, nl, a) = fixture();
        let arena = DesignArena::from_netlist(&nl);
        let dt = DesignTiming::compute(&g, &nl, &arena, &a);
        for ni in 0..nl.len() {
            let t = NetTiming::compute(&g, nl.net(ni), a.net_layers(ni));
            assert_eq!(
                dt.critical_delay(ni).to_bits(),
                t.critical_delay().to_bits()
            );
            assert_eq!(dt.total_cap(ni).to_bits(), t.total_cap().to_bits());
            assert_eq!(dt.downstream_caps(ni).len(), t.downstream_caps().len());
            for (s, &cd) in t.downstream_caps().iter().enumerate() {
                assert_eq!(dt.downstream_caps(ni)[s].to_bits(), cd.to_bits());
            }
            for n in 0..nl.net(ni).tree().num_nodes() {
                assert_eq!(dt.node_delays(ni)[n].to_bits(), t.node_delay(n).to_bits());
            }
        }
    }

    #[test]
    fn criticality_order_matches_report() {
        let (g, nl, a) = fixture();
        let arena = DesignArena::from_netlist(&nl);
        let dt = DesignTiming::compute(&g, &nl, &arena, &a);
        let report = crate::analyze(&g, &nl, &a);
        assert_eq!(dt.nets_by_criticality(), report.nets_by_criticality());
        assert_eq!(
            dt.avg_critical_delay().to_bits(),
            report.avg_critical_delay().to_bits()
        );
        assert_eq!(
            dt.max_critical_delay().to_bits(),
            report.max_critical_delay().to_bits()
        );
    }
}
