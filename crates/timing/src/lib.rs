//! Elmore delay engine for layer-assigned routing trees.
//!
//! Implements the timing model of Section 2.2 of the DAC'16 CPLA paper:
//!
//! * Segment delay (Eqn. 2): `t_s(i, l) = R_e(l) · (C_e(l)/2 + C_d(i))`
//!   where `R_e`, `C_e` are the total wire resistance/capacitance of
//!   segment `i` on layer `l` and `C_d(i)` its downstream capacitance.
//! * Via delay (Eqn. 3): `t_v = Σ R_v(l) · min{C_d(i), C_d(p)}` over the
//!   layer boundaries the via stack spans.
//!
//! Downstream capacitances are computed bottom-up (sinks to source), sink
//! delays top-down; [`NetTiming`] bundles the results for one net and
//! [`analyze`] produces a [`TimingReport`] over a whole netlist.
//!
//! # Example
//!
//! ```
//! use grid::{Cell, Direction, GridBuilder};
//! use net::{Assignment, Net, Netlist, Pin, RouteTreeBuilder};
//! use timing::analyze;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let grid = GridBuilder::new(8, 8)
//!     .alternating_layers(4, Direction::Horizontal)
//!     .build()?;
//! let mut b = RouteTreeBuilder::new(Cell::new(0, 0));
//! let end = b.add_segment(b.root(), Cell::new(5, 0))?;
//! b.attach_pin(b.root(), 0)?;
//! b.attach_pin(end, 1)?;
//! let net = Net::new(
//!     "n",
//!     vec![Pin::source(Cell::new(0, 0), 1.0), Pin::sink(Cell::new(5, 0), 2.0)],
//!     b.build()?,
//! );
//! let mut nl = Netlist::new();
//! nl.push(net);
//! let assignment = Assignment::lowest_layers(&nl, &grid);
//! let report = analyze(&grid, &nl, &assignment);
//! assert!(report.net(0).critical_delay() > 0.0);
//! # Ok(())
//! # }
//! ```

mod elmore;
mod histogram;
mod incremental;
mod report;
mod slack;
mod soa;

pub use elmore::{segment_delay_on_layer, NetTiming};
pub use histogram::DelayHistogram;
pub use incremental::{IncrementalTiming, TimingModel};
pub use report::{analyze, analyze_nets, TimingReport};
pub use slack::{RequiredTimes, SlackReport};
pub use soa::DesignTiming;
