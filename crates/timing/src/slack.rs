//! Required arrival times and slack.
//!
//! The paper motivates critical-net selection with *timing budgets*:
//! a sink violates when its Elmore arrival exceeds its required time.
//! This module layers required times over [`crate::TimingReport`] so
//! flows can release exactly the violating nets instead of a fixed
//! fraction.

use std::collections::HashMap;

use crate::TimingReport;

/// Required arrival times per sink pin.
///
/// Keys are `(net index, pin index)`; nets or sinks without an entry
/// fall back to the default budget.
#[derive(Clone, PartialEq, Debug)]
pub struct RequiredTimes {
    default_budget: f64,
    per_sink: HashMap<(usize, usize), f64>,
}

impl RequiredTimes {
    /// Uniform budget for every sink.
    pub fn uniform(budget: f64) -> RequiredTimes {
        RequiredTimes {
            default_budget: budget,
            per_sink: HashMap::new(),
        }
    }

    /// Overrides the budget of one sink.
    pub fn set(&mut self, net: usize, pin: usize, required: f64) {
        self.per_sink.insert((net, pin), required);
    }

    /// The budget of one sink.
    pub fn required(&self, net: usize, pin: usize) -> f64 {
        self.per_sink
            .get(&(net, pin))
            .copied()
            .unwrap_or(self.default_budget)
    }

    /// Budgets derived from the *current* timing: each sink gets
    /// `scale ×` its present arrival. `scale < 1` manufactures
    /// violations proportional to each path's length — a common way to
    /// exercise timing-repair flows without an external constraint file.
    pub fn from_report(report: &TimingReport, scale: f64) -> RequiredTimes {
        let mut rt = RequiredTimes::uniform(f64::INFINITY);
        for (net, timing) in report.iter() {
            for &(pin, delay) in timing.sink_delays() {
                rt.set(net, pin, delay * scale);
            }
        }
        rt
    }
}

/// Slack analysis of one report against a set of required times.
#[derive(Clone, PartialEq, Debug)]
pub struct SlackReport {
    /// `(net, pin, slack)` for every analyzed sink; negative = violation.
    slacks: Vec<(usize, usize, f64)>,
}

impl SlackReport {
    /// Computes `slack = required − arrival` for every sink of every
    /// analyzed net.
    pub fn new(report: &TimingReport, required: &RequiredTimes) -> SlackReport {
        let mut slacks = Vec::new();
        for (net, timing) in report.iter() {
            for &(pin, delay) in timing.sink_delays() {
                slacks.push((net, pin, required.required(net, pin) - delay));
            }
        }
        SlackReport { slacks }
    }

    /// All `(net, pin, slack)` entries.
    pub fn slacks(&self) -> &[(usize, usize, f64)] {
        &self.slacks
    }

    /// The worst (most negative) slack, or `None` when empty.
    pub fn worst_slack(&self) -> Option<f64> {
        self.slacks
            .iter()
            .map(|&(_, _, s)| s)
            .min_by(|a, b| a.total_cmp(b))
    }

    /// Total negative slack (0.0 when nothing violates).
    pub fn total_negative_slack(&self) -> f64 {
        self.slacks.iter().map(|&(_, _, s)| s.min(0.0)).sum()
    }

    /// Number of violating sinks.
    pub fn violations(&self) -> usize {
        self.slacks.iter().filter(|&&(_, _, s)| s < 0.0).count()
    }

    /// Net indices with at least one violating sink, ordered by their
    /// worst slack (most violating first). This is the release set a
    /// budget-driven flow hands to the layer-assignment engines.
    pub fn violating_nets(&self) -> Vec<usize> {
        let mut worst: HashMap<usize, f64> = HashMap::new();
        for &(net, _, s) in &self.slacks {
            if s < 0.0 {
                let e = worst.entry(net).or_insert(f64::INFINITY);
                *e = e.min(s);
            }
        }
        let mut nets: Vec<(usize, f64)> = worst.into_iter().collect();
        nets.sort_by(|a, b| a.1.total_cmp(&b.1));
        nets.into_iter().map(|(n, _)| n).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze;
    use grid::{Cell, Direction, GridBuilder};
    use net::{Assignment, Net, Netlist, Pin, RouteTreeBuilder};

    fn fixture() -> (TimingReport, Netlist) {
        let grid = GridBuilder::new(32, 8)
            .alternating_layers(4, Direction::Horizontal)
            .build()
            .unwrap();
        let mut nl = Netlist::new();
        for (i, len) in [4u16, 20, 10].iter().enumerate() {
            let y = i as u16;
            let mut b = RouteTreeBuilder::new(Cell::new(0, y));
            let e = b.add_segment(b.root(), Cell::new(*len, y)).unwrap();
            b.attach_pin(b.root(), 0).unwrap();
            b.attach_pin(e, 1).unwrap();
            nl.push(Net::new(
                format!("n{i}"),
                vec![
                    Pin::source(Cell::new(0, y), 0.0),
                    Pin::sink(Cell::new(*len, y), 1.0),
                ],
                b.build().unwrap(),
            ));
        }
        let a = Assignment::lowest_layers(&nl, &grid);
        (analyze(&grid, &nl, &a), nl)
    }

    #[test]
    fn uniform_budget_flags_slow_nets_only() {
        let (report, _) = fixture();
        // Budget sits between the delay of net 0 (len 4) and net 2
        // (len 10).
        let mid = (report.net(0).critical_delay() + report.net(2).critical_delay()) / 2.0;
        let slack = SlackReport::new(&report, &RequiredTimes::uniform(mid));
        let violating = slack.violating_nets();
        assert_eq!(violating, vec![1, 2], "worst first");
        assert_eq!(slack.violations(), 2);
        assert!(slack.worst_slack().unwrap() < 0.0);
        assert!(slack.total_negative_slack() < 0.0);
    }

    #[test]
    fn generous_budget_has_no_violations() {
        let (report, _) = fixture();
        let slack = SlackReport::new(&report, &RequiredTimes::uniform(1e12));
        assert_eq!(slack.violations(), 0);
        assert_eq!(slack.total_negative_slack(), 0.0);
        assert!(slack.violating_nets().is_empty());
        assert!(slack.worst_slack().unwrap() > 0.0);
    }

    #[test]
    fn per_sink_override_beats_default() {
        let (report, _) = fixture();
        let mut rt = RequiredTimes::uniform(1e12);
        rt.set(0, 1, 0.0); // impossible budget for net 0's sink
        let slack = SlackReport::new(&report, &rt);
        assert_eq!(slack.violating_nets(), vec![0]);
    }

    #[test]
    fn scaled_budgets_violate_everything_below_one() {
        let (report, _) = fixture();
        let rt = RequiredTimes::from_report(&report, 0.9);
        let slack = SlackReport::new(&report, &rt);
        assert_eq!(slack.violations(), 3, "every sink misses a 0.9 budget");
        let rt_loose = RequiredTimes::from_report(&report, 1.1);
        let slack_loose = SlackReport::new(&report, &rt_loose);
        assert_eq!(slack_loose.violations(), 0);
    }
}
