//! Per-net Elmore delay computation.

use grid::Grid;
use net::Net;

/// Segment delay on a candidate layer (Eqn. 2 of the paper):
/// `R_e(l) · (C_e(l)/2 + C_d)`, where `R_e`/`C_e` scale with the segment
/// length and `C_d` is the downstream capacitance *beyond* the segment.
///
/// This is the cost CPLA places on the diagonal of its `T` matrix; the
/// downstream capacitance is taken from the current assignment and
/// refreshed each outer iteration.
pub fn segment_delay_on_layer(
    grid: &Grid,
    net: &Net,
    seg: usize,
    layer: usize,
    downstream_cap: f64,
) -> f64 {
    let len = net.tree().segment_length(seg) as f64;
    let r = grid.layer(layer).unit_resistance * len;
    let c = grid.layer(layer).unit_capacitance * len;
    r * (c / 2.0 + downstream_cap)
}

/// Elmore timing of one net under a given layer vector.
#[derive(Clone, PartialEq, Debug)]
pub struct NetTiming {
    /// Downstream capacitance per segment: total capacitance hanging
    /// below the segment's child-side endpoint (wire + sink loads),
    /// excluding the segment's own wire capacitance.
    downstream_cap: Vec<f64>,
    /// Elmore delay at each tree node.
    node_delay: Vec<f64>,
    /// `(pin index, delay)` for every sink pin, in pin order.
    sink_delays: Vec<(usize, f64)>,
    /// Total capacitance seen by the driver.
    total_cap: f64,
}

impl NetTiming {
    /// Computes the full Elmore timing of `net` with segment `s` assigned
    /// to `layers[s]`.
    ///
    /// # Panics
    ///
    /// Panics if `layers.len() != net.tree().num_segments()` or a layer
    /// index is out of range for the grid.
    pub fn compute(grid: &Grid, net: &Net, layers: &[usize]) -> NetTiming {
        let tree = net.tree();
        assert_eq!(layers.len(), tree.num_segments());

        // -------- bottom-up: downstream capacitance per segment --------
        let mut downstream_cap = vec![0.0f64; tree.num_segments()];
        let node_pin_cap = |node: usize| -> f64 {
            match tree.node(node).pin {
                // The source pin does not load the net.
                Some(0) | None => 0.0,
                Some(p) => net.pins()[p as usize].capacitance,
            }
        };
        for s in tree.postorder_segments() {
            let child_node = tree.segment(s).to as usize;
            let mut cd = node_pin_cap(child_node);
            for &cs in tree.child_segments(child_node) {
                let cs = cs as usize;
                let len = tree.segment_length(cs) as f64;
                let wire_cap = grid.layer(layers[cs]).unit_capacitance * len;
                cd += wire_cap + downstream_cap[cs];
            }
            downstream_cap[s] = cd;
        }

        // Total capacitance at the driver = caps of root's child segments
        // plus their downstream caps plus any load at the root itself.
        let root = tree.root();
        let mut total_cap = node_pin_cap(root);
        for &cs in tree.child_segments(root) {
            let cs = cs as usize;
            let len = tree.segment_length(cs) as f64;
            total_cap += grid.layer(layers[cs]).unit_capacitance * len + downstream_cap[cs];
        }

        // -------- top-down: node delays --------
        let mut node_delay = vec![0.0f64; tree.num_nodes()];
        node_delay[root] = net.driver_resistance * total_cap;
        for s in tree.preorder_segments() {
            let seg = tree.segment(s);
            let (u, v) = (seg.from as usize, seg.to as usize);
            let len = tree.segment_length(s) as f64;
            let lay = grid.layer(layers[s]);
            let r = lay.unit_resistance * len;
            let c = lay.unit_capacitance * len;

            // Via delay where the segment departs from its parent metal:
            // resistance of the stack between the entry layer at node u
            // and this segment's layer, times the capacitance it drives
            // (Eqn. 3: min of the two downstream caps; the child side is
            // always the smaller in a tree).
            let entry_layer = match tree.parent_segment(u) {
                Some(ps) => layers[ps],
                // At the root the net enters from the source pin's layer.
                None => net.source().layer,
            };
            let (lo, hi) = if entry_layer <= layers[s] {
                (entry_layer, layers[s])
            } else {
                (layers[s], entry_layer)
            };
            let via_r = grid.via_stack_resistance(lo, hi);
            let entry_cd = match tree.parent_segment(u) {
                Some(ps) => downstream_cap[ps],
                None => total_cap,
            };
            let via_delay = via_r * entry_cd.min(downstream_cap[s]);

            node_delay[v] = node_delay[u] + via_delay + r * (c / 2.0 + downstream_cap[s]);
        }

        // -------- sink delays (including the pin drop-via) --------
        let mut sink_delays = Vec::with_capacity(net.pins().len() - 1);
        for (ni, node) in tree.nodes().enumerate() {
            let Some(p) = node.pin else { continue };
            if p == 0 {
                continue;
            }
            let pin = &net.pins()[p as usize];
            // Stack from the metal reaching this node down to the pin.
            let metal_layer = match tree.parent_segment(ni) {
                Some(ps) => layers[ps],
                None => pin.layer,
            };
            let (lo, hi) = if pin.layer <= metal_layer {
                (pin.layer, metal_layer)
            } else {
                (metal_layer, pin.layer)
            };
            let drop_delay = grid.via_stack_resistance(lo, hi) * pin.capacitance;
            sink_delays.push((p as usize, node_delay[ni] + drop_delay));
        }
        sink_delays.sort_by_key(|&(p, _)| p);

        NetTiming {
            downstream_cap,
            node_delay,
            sink_delays,
            total_cap,
        }
    }

    /// Downstream capacitance of segment `s` (excluding its own wire).
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    pub fn downstream_cap(&self, s: usize) -> f64 {
        self.downstream_cap[s]
    }

    /// All downstream capacitances, indexed by segment.
    pub fn downstream_caps(&self) -> &[f64] {
        &self.downstream_cap
    }

    /// Elmore delay at tree node `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range.
    pub fn node_delay(&self, n: usize) -> f64 {
        self.node_delay[n]
    }

    /// `(pin index, delay)` for every sink, ordered by pin index.
    pub fn sink_delays(&self) -> &[(usize, f64)] {
        &self.sink_delays
    }

    /// Total capacitance presented to the driver.
    pub fn total_cap(&self) -> f64 {
        self.total_cap
    }

    /// The worst sink delay (the net's critical-path delay `T_cp`), or
    /// 0.0 for a net with no sinks.
    pub fn critical_delay(&self) -> f64 {
        self.sink_delays
            .iter()
            .map(|&(_, d)| d)
            .fold(0.0f64, f64::max)
    }

    /// Pin index of the critical (worst-delay) sink, if any.
    pub fn critical_sink(&self) -> Option<usize> {
        self.sink_delays
            .iter()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .map(|&(p, _)| p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grid::{Cell, Direction, GridBuilder};
    use net::{Net, Pin, RouteTreeBuilder};

    fn grid() -> Grid {
        GridBuilder::new(16, 16)
            .alternating_layers(4, Direction::Horizontal)
            .build()
            .unwrap()
    }

    /// Straight 2-pin net of length 4 on row 0.
    fn straight_net(sink_cap: f64) -> Net {
        let mut b = RouteTreeBuilder::new(Cell::new(0, 0));
        let end = b.add_segment(b.root(), Cell::new(4, 0)).unwrap();
        b.attach_pin(b.root(), 0).unwrap();
        b.attach_pin(end, 1).unwrap();
        Net::new(
            "s",
            vec![
                Pin::source(Cell::new(0, 0), 0.0),
                Pin::sink(Cell::new(4, 0), sink_cap),
            ],
            b.build().unwrap(),
        )
    }

    #[test]
    fn straight_net_matches_hand_elmore() {
        let g = grid();
        let n = straight_net(2.0);
        let t = NetTiming::compute(&g, &n, &[0]);
        let len = 4.0;
        let r = g.layer(0).unit_resistance * len;
        let c = g.layer(0).unit_capacitance * len;
        // Downstream of the single segment is just the sink pin.
        assert!((t.downstream_cap(0) - 2.0).abs() < 1e-12);
        let expect = r * (c / 2.0 + 2.0);
        let (pin, delay) = t.sink_delays()[0];
        assert_eq!(pin, 1);
        assert!((delay - expect).abs() < 1e-9, "{delay} vs {expect}");
        assert_eq!(t.critical_sink(), Some(1));
    }

    #[test]
    fn higher_layer_reduces_delay_of_long_net() {
        let g = grid();
        let n = straight_net(2.0);
        let low = NetTiming::compute(&g, &n, &[0]).critical_delay();
        // Layer 2 is horizontal with half the resistance; via penalty is
        // small relative to the wire delay for this length.
        let high = NetTiming::compute(&g, &n, &[2]).critical_delay();
        assert!(high < low, "high {high} >= low {low}");
    }

    #[test]
    fn branch_caps_accumulate() {
        // Y net: trunk (0,0)->(2,0), branches to (2,3) sink A and
        // (4,0) sink B.
        let g = grid();
        let mut b = RouteTreeBuilder::new(Cell::new(0, 0));
        let j = b.add_segment(b.root(), Cell::new(2, 0)).unwrap();
        let a = b.add_segment(j, Cell::new(2, 3)).unwrap();
        let bb = b.add_segment(j, Cell::new(4, 0)).unwrap();
        b.attach_pin(b.root(), 0).unwrap();
        b.attach_pin(a, 1).unwrap();
        b.attach_pin(bb, 2).unwrap();
        let n = Net::new(
            "y",
            vec![
                Pin::source(Cell::new(0, 0), 0.0),
                Pin::sink(Cell::new(2, 3), 1.0),
                Pin::sink(Cell::new(4, 0), 1.0),
            ],
            b.build().unwrap(),
        );
        let t = NetTiming::compute(&g, &n, &[0, 1, 0]);
        // Trunk downstream cap = both branch wires + both sink pins.
        let c_branch_a = g.layer(1).unit_capacitance * 3.0;
        let c_branch_b = g.layer(0).unit_capacitance * 2.0;
        let expect = c_branch_a + c_branch_b + 2.0;
        assert!((t.downstream_cap(0) - expect).abs() < 1e-9);
        // Two sinks reported, both positive.
        assert_eq!(t.sink_delays().len(), 2);
        assert!(t.sink_delays().iter().all(|&(_, d)| d > 0.0));
        // Total cap = trunk wire + downstream.
        let trunk_cap = g.layer(0).unit_capacitance * 2.0;
        assert!((t.total_cap() - (trunk_cap + expect)).abs() < 1e-9);
    }

    #[test]
    fn via_stack_adds_delay() {
        let g = grid();
        let n = straight_net(2.0);
        // Same wire layer resistance trick: compare two horizontal layers
        // is unfair; instead add driver at pin layer 0 and assign to layer
        // 0 vs a *hypothetical* identical layer reached through vias.
        // Simplest check: delay on layer 2 includes the 0->2 via stack.
        let t = NetTiming::compute(&g, &n, &[2]);
        let len = 4.0;
        let lay = g.layer(2);
        let r = lay.unit_resistance * len;
        let c = lay.unit_capacitance * len;
        let wire = r * (c / 2.0 + 2.0);
        let via_up = g.via_stack_resistance(0, 2) * t.downstream_cap(0);
        let via_down = g.via_stack_resistance(0, 2) * 2.0;
        let (_, delay) = t.sink_delays()[0];
        assert!(
            (delay - (wire + via_up + via_down)).abs() < 1e-9,
            "{delay} vs {}",
            wire + via_up + via_down
        );
    }

    #[test]
    fn deep_chain_accumulates_monotonically() {
        // A 5-hop chain of alternating H/V segments: node delay must be
        // strictly increasing from source to sink, and the sink delay
        // must equal the last node's delay plus the pin drop.
        let g = grid();
        let mut b = RouteTreeBuilder::new(Cell::new(0, 0));
        let mut cur = b.root();
        let waypoints = [
            Cell::new(3, 0),
            Cell::new(3, 3),
            Cell::new(6, 3),
            Cell::new(6, 6),
            Cell::new(9, 6),
        ];
        for w in waypoints {
            cur = b.add_segment(cur, w).unwrap();
        }
        b.attach_pin(0, 0).unwrap();
        b.attach_pin(cur, 1).unwrap();
        let n = Net::new(
            "chain",
            vec![
                Pin::source(Cell::new(0, 0), 0.0),
                Pin::sink(Cell::new(9, 6), 1.5),
            ],
            b.build().unwrap(),
        );
        let layers = [0usize, 1, 2, 3, 0];
        let t = NetTiming::compute(&g, &n, &layers);
        let mut prev = t.node_delay(0);
        for node in 1..n.tree().num_nodes() {
            let d = t.node_delay(node);
            assert!(d > prev, "node {node}: {d} <= {prev}");
            prev = d;
        }
        let (_, sink_delay) = t.sink_delays()[0];
        assert!(sink_delay >= prev, "pin drop cannot reduce delay");
        // Downstream caps shrink monotonically along the chain.
        for s in 1..5 {
            assert!(t.downstream_cap(s) < t.downstream_cap(s - 1));
        }
    }

    #[test]
    fn promoting_a_branch_raises_sibling_path_delay() {
        // The load-coupling the CPLA objective models: moving a branch
        // to a higher-capacitance layer increases the delay of sinks on
        // the *other* branch (through the shared trunk's downstream
        // cap).
        let g = grid();
        let mut b = RouteTreeBuilder::new(Cell::new(0, 0));
        let j = b.add_segment(b.root(), Cell::new(4, 0)).unwrap();
        let s1 = b.add_segment(j, Cell::new(4, 4)).unwrap();
        let s2 = b.add_segment(j, Cell::new(8, 0)).unwrap();
        b.attach_pin(0, 0).unwrap();
        b.attach_pin(s1, 1).unwrap();
        b.attach_pin(s2, 2).unwrap();
        let n = Net::new(
            "y",
            vec![
                Pin::source(Cell::new(0, 0), 0.0),
                Pin::sink(Cell::new(4, 4), 1.0),
                Pin::sink(Cell::new(8, 0), 1.0),
            ],
            b.build().unwrap(),
        );
        // Branch to sink 1 on layer 1 (cap 1.15/tile) vs layer 3
        // (cap 1.45/tile): sink 2's delay must increase.
        let low = NetTiming::compute(&g, &n, &[0, 1, 0]);
        let high = NetTiming::compute(&g, &n, &[0, 3, 0]);
        let sink2 = |t: &NetTiming| {
            t.sink_delays()
                .iter()
                .find(|&&(p, _)| p == 2)
                .map(|&(_, d)| d)
                .unwrap()
        };
        assert!(
            sink2(&high) > sink2(&low),
            "{} <= {}",
            sink2(&high),
            sink2(&low)
        );
    }

    #[test]
    fn driver_resistance_shifts_all_sinks() {
        let g = grid();
        let mut n = straight_net(2.0);
        let base = NetTiming::compute(&g, &n, &[0]).critical_delay();
        n.driver_resistance = 5.0;
        let t = NetTiming::compute(&g, &n, &[0]);
        let shifted = t.critical_delay();
        assert!((shifted - base - 5.0 * t.total_cap()).abs() < 1e-9);
    }
}
