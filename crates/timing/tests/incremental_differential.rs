//! Differential test: [`IncrementalTiming`] must agree with a fresh
//! [`NetTiming::compute`] to 1e-9 (relative) after arbitrary sequences
//! of single-segment layer changes, commits and reverts, and a revert
//! must restore the state at the last commit point bitwise.
//!
//! Deterministic seed sweeps; the off-by-default `proptest` feature
//! widens the sampled ranges.

use grid::{Cell, Direction, Grid, GridBuilder};
use net::{Net, Pin, RouteTreeBuilder};
use prng::Rng;
use timing::{IncrementalTiming, NetTiming, TimingModel};

fn sweep() -> (usize, usize) {
    // (nets, ops per net)
    if cfg!(feature = "proptest") {
        (200, 200)
    } else {
        (40, 60)
    }
}

fn grid() -> Grid {
    GridBuilder::new(32, 32)
        .alternating_layers(6, Direction::Horizontal)
        .build()
        .unwrap()
}

/// Grows a random routing tree and decorates it with random sink pins,
/// pin layers and a random driver resistance.
fn random_net(rng: &mut Rng) -> Net {
    let root_cell = Cell::new(rng.range_u16(6, 25), rng.range_u16(6, 25));
    let mut b = RouteTreeBuilder::new(root_cell);
    let mut cells = vec![root_cell];
    let target_segments = rng.range_usize(1, 12);
    let mut guard = 0;
    while b.num_nodes() < target_segments + 1 && guard < 200 {
        guard += 1;
        let from = rng.range_usize(0, b.num_nodes() - 1);
        let fc = b.node_cell(from);
        let span = rng.range_u16(1, 5) as i32;
        let sign = if rng.bool(0.5) { 1 } else { -1 };
        let (x, y) = if rng.bool(0.5) {
            (fc.x as i32 + sign * span, fc.y as i32)
        } else {
            (fc.x as i32, fc.y as i32 + sign * span)
        };
        if !(0..32).contains(&x) || !(0..32).contains(&y) {
            continue;
        }
        let to = Cell::new(x as u16, y as u16);
        if cells.contains(&to) {
            continue;
        }
        if let Ok(n) = b.add_segment(from, to) {
            cells.push(b.node_cell(n));
        }
    }
    let nodes = b.num_nodes();
    b.attach_pin(b.root(), 0).unwrap();
    let mut pins = vec![Pin::source(root_cell, 0.0).on_layer(rng.range_usize(0, 2))];
    for node in 1..nodes {
        // Leaf nodes always get a sink so every branch ends in one;
        // interior nodes occasionally host one too.
        if node + 1 == nodes || rng.bool(0.4) {
            let pin_idx = pins.len() as u32;
            b.attach_pin(node, pin_idx).unwrap();
            pins.push(
                Pin::sink(b.node_cell(node), rng.range_f64(0.1, 4.0))
                    .on_layer(rng.range_usize(0, 2)),
            );
        }
    }
    let mut net = Net::new("rand", pins, b.build().unwrap());
    net.driver_resistance = rng.range_f64(0.2, 3.0);
    net
}

/// Direction-consistent random layer for segment `s`.
fn random_layer(rng: &mut Rng, grid: &Grid, net: &Net, s: usize) -> usize {
    let dir = net.tree().segment(s).dir;
    let layers: Vec<usize> = grid.layers_in_direction(dir).collect();
    layers[rng.range_usize(0, layers.len() - 1)]
}

fn assert_matches(inc: &IncrementalTiming, grid: &Grid, net: &Net) {
    let fresh = NetTiming::compute(grid, net, inc.layers());
    let tol = |x: f64| 1e-9 * x.abs().max(1.0);
    for s in 0..net.tree().num_segments() {
        let (a, b) = (inc.downstream_cap(s), fresh.downstream_cap(s));
        assert!((a - b).abs() <= tol(b), "cap[{s}]: {a} vs {b}");
    }
    assert!((inc.total_cap() - fresh.total_cap()).abs() <= tol(fresh.total_cap()));
    let (a, b) = (inc.critical_delay(), fresh.critical_delay());
    assert!((a - b).abs() <= tol(b), "critical: {a} vs {b}");
    let sinks = inc.sink_delays();
    let fresh_sinks = fresh.sink_delays();
    assert_eq!(sinks.len(), fresh_sinks.len());
    for (&(p, d), &(fp, fd)) in sinks.iter().zip(fresh_sinks) {
        assert_eq!(p, fp);
        assert!((d - fd).abs() <= tol(fd), "sink {p}: {d} vs {fd}");
    }
}

#[test]
fn incremental_matches_fresh_compute_under_random_ops() {
    let g = grid();
    let model = TimingModel::from_grid(&g);
    let (nets, ops) = sweep();
    let mut rng = Rng::seed_from_u64(0x1c4e);
    for _ in 0..nets {
        let net = random_net(&mut rng);
        let n = net.tree().num_segments();
        let layers: Vec<usize> = (0..n)
            .map(|s| random_layer(&mut rng, &g, &net, s))
            .collect();
        let mut inc = IncrementalTiming::new(&model, &net, &layers);
        assert_matches(&inc, &g, &net);

        // Snapshot of the last committed state, for revert checks.
        let mut committed_layers = layers.clone();
        let mut committed_bits = inc.critical_delay().to_bits();
        for _ in 0..ops {
            let s = rng.range_usize(0, n - 1);
            inc.set_layer(s, random_layer(&mut rng, &g, &net, s));
            assert_matches(&inc, &g, &net);
            if rng.bool(0.3) {
                inc.commit();
                committed_layers = inc.layers().to_vec();
                committed_bits = inc.critical_delay().to_bits();
            } else if rng.bool(0.3) {
                inc.revert();
                assert_eq!(inc.layers(), committed_layers.as_slice());
                assert_eq!(inc.critical_delay().to_bits(), committed_bits);
                assert_matches(&inc, &g, &net);
            }
        }
    }
}

#[test]
fn revert_after_long_uncommitted_run_is_exact() {
    let g = grid();
    let model = TimingModel::from_grid(&g);
    let mut rng = Rng::seed_from_u64(0xd1ff);
    for _ in 0..10 {
        let net = random_net(&mut rng);
        let n = net.tree().num_segments();
        let layers: Vec<usize> = (0..n)
            .map(|s| random_layer(&mut rng, &g, &net, s))
            .collect();
        let mut inc = IncrementalTiming::new(&model, &net, &layers);
        let caps = inc.downstream_caps().to_vec();
        let bits = inc.critical_delay().to_bits();
        for _ in 0..100 {
            let s = rng.range_usize(0, n - 1);
            inc.set_layer(s, random_layer(&mut rng, &g, &net, s));
        }
        inc.revert();
        assert_eq!(inc.layers(), layers.as_slice());
        assert_eq!(inc.downstream_caps(), caps.as_slice());
        assert_eq!(inc.critical_delay().to_bits(), bits);
    }
}
