//! Metal-layer description: routing direction, geometry and RC parasitics.

use crate::Direction;

/// Electrical and geometric description of one metal layer.
///
/// Resistance and capacitance are expressed *per tile length*, so that a
/// wire spanning `n` grid edges on this layer has resistance
/// `n * unit_resistance` and capacitance `n * unit_capacitance`.
///
/// Units are arbitrary but must be consistent across layers; every consumer
/// in this workspace only relies on relative values (higher layers are
/// wider and less resistive, per the paper's industrial settings).
#[derive(Clone, PartialEq, Debug)]
pub struct Layer {
    /// Human-readable name, e.g. `"M3"`.
    pub name: String,
    /// Preferred (and only) routing direction on this layer.
    pub direction: Direction,
    /// Wire resistance per tile length (Ω / tile).
    pub unit_resistance: f64,
    /// Wire capacitance per tile length (fF / tile).
    pub unit_capacitance: f64,
    /// Drawn wire width, in the same length unit as tile dimensions.
    pub wire_width: f64,
    /// Minimum wire spacing, same unit as `wire_width`.
    pub wire_spacing: f64,
    /// Default routing capacity of every edge on this layer (wires/edge).
    pub default_capacity: u32,
}

impl Layer {
    /// Creates a layer with the given name and direction and neutral
    /// electrical parameters (R = 1 Ω/tile, C = 1 fF/tile, width = spacing
    /// = 1, capacity = 10).
    ///
    /// ```
    /// use grid::{Direction, Layer};
    /// let m2 = Layer::new("M2", Direction::Vertical);
    /// assert_eq!(m2.direction, Direction::Vertical);
    /// ```
    pub fn new(name: impl Into<String>, direction: Direction) -> Layer {
        Layer {
            name: name.into(),
            direction,
            unit_resistance: 1.0,
            unit_capacitance: 1.0,
            wire_width: 1.0,
            wire_spacing: 1.0,
            default_capacity: 10,
        }
    }

    /// Sets the per-tile resistance and capacitance.
    #[must_use]
    pub fn with_rc(mut self, resistance: f64, capacitance: f64) -> Layer {
        self.unit_resistance = resistance;
        self.unit_capacitance = capacitance;
        self
    }

    /// Sets the drawn wire width and spacing.
    #[must_use]
    pub fn with_geometry(mut self, width: f64, spacing: f64) -> Layer {
        self.wire_width = width;
        self.wire_spacing = spacing;
        self
    }

    /// Sets the default edge capacity.
    #[must_use]
    pub fn with_capacity(mut self, capacity: u32) -> Layer {
        self.default_capacity = capacity;
        self
    }

    /// Wire pitch (width + spacing).
    pub fn pitch(&self) -> f64 {
        self.wire_width + self.wire_spacing
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_style_setters_apply() {
        let l = Layer::new("M5", Direction::Horizontal)
            .with_rc(0.5, 2.0)
            .with_geometry(2.0, 1.5)
            .with_capacity(42);
        assert_eq!(l.unit_resistance, 0.5);
        assert_eq!(l.unit_capacitance, 2.0);
        assert_eq!(l.pitch(), 3.5);
        assert_eq!(l.default_capacity, 42);
        assert_eq!(l.name, "M5");
    }
}
