//! Construction of [`Grid`]s.

use crate::{BuildGridError, Direction, Grid, Layer};

/// Builder for [`Grid`].
///
/// ```
/// use grid::{Direction, GridBuilder, Layer};
///
/// # fn main() -> Result<(), grid::BuildGridError> {
/// let grid = GridBuilder::new(16, 16)
///     .tile_size(40.0, 40.0)
///     .via_geometry(1.0, 1.0)
///     .push_layer(Layer::new("M1", Direction::Horizontal).with_rc(4.0, 1.0))
///     .push_layer(Layer::new("M2", Direction::Vertical).with_rc(2.0, 1.0))
///     .via_resistances(vec![3.0])
///     .build()?;
/// assert_eq!(grid.num_layers(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct GridBuilder {
    width: u16,
    height: u16,
    tile_width: f64,
    tile_height: f64,
    via_width: f64,
    via_spacing: f64,
    layers: Vec<Layer>,
    via_resistance: Option<Vec<f64>>,
}

impl GridBuilder {
    /// Starts a builder for a `width × height` tile grid.
    pub fn new(width: u16, height: u16) -> GridBuilder {
        GridBuilder {
            width,
            height,
            tile_width: 10.0,
            tile_height: 10.0,
            via_width: 1.0,
            via_spacing: 1.0,
            layers: Vec::new(),
            via_resistance: None,
        }
    }

    /// Sets the physical tile dimensions (defaults: 10 × 10).
    #[must_use]
    pub fn tile_size(mut self, width: f64, height: f64) -> GridBuilder {
        self.tile_width = width;
        self.tile_height = height;
        self
    }

    /// Sets via width and spacing (defaults: 1, 1).
    #[must_use]
    pub fn via_geometry(mut self, width: f64, spacing: f64) -> GridBuilder {
        self.via_width = width;
        self.via_spacing = spacing;
        self
    }

    /// Appends one layer on top of the stack.
    #[must_use]
    pub fn push_layer(mut self, layer: Layer) -> GridBuilder {
        self.layers.push(layer);
        self
    }

    /// Appends `count` layers with alternating directions starting from
    /// `first`, named `M1..M{count}`, with a realistic decreasing
    /// resistance profile: layer `l` gets resistance `8 / 2^(l/2)` Ω/tile
    /// and capacitance `1 + 0.15·l` fF/tile, mirroring the industrial
    /// observation that higher layers are wider and less resistive.
    #[must_use]
    pub fn alternating_layers(mut self, count: usize, first: Direction) -> GridBuilder {
        let mut dir = first;
        for l in 0..count {
            let resistance = 8.0 / f64::powi(2.0, (l / 2) as i32);
            let capacitance = 1.0 + 0.15 * l as f64;
            let width = 1.0 + 0.5 * (l / 2) as f64;
            self.layers.push(
                Layer::new(format!("M{}", l + 1), dir)
                    .with_rc(resistance, capacitance)
                    .with_geometry(width, width),
            );
            dir = dir.flipped();
        }
        self
    }

    /// Overrides the default capacity of every layer added so far.
    #[must_use]
    pub fn uniform_capacity(mut self, cap: u32) -> GridBuilder {
        for l in &mut self.layers {
            l.default_capacity = cap;
        }
        self
    }

    /// Sets the via resistance table; entry `l` is the resistance between
    /// layers `l` and `l + 1`. When unset, every boundary defaults to a
    /// tenth of the per-tile resistance of the lower layer: a via is a
    /// few squares of metal, far shorter than a routing tile, so layer
    /// promotion pays off even for short segments while via-heavy
    /// assignments still lose measurable delay.
    #[must_use]
    pub fn via_resistances(mut self, table: Vec<f64>) -> GridBuilder {
        self.via_resistance = Some(table);
        self
    }

    /// Builds the grid.
    ///
    /// # Errors
    ///
    /// Returns [`BuildGridError`] when the description is degenerate: no
    /// routing edges, no layers, a missing direction, non-positive layer
    /// parameters, or a via-resistance table of the wrong length.
    pub fn build(self) -> Result<Grid, BuildGridError> {
        if (self.width < 2 || self.height < 1) && (self.width < 1 || self.height < 2) {
            return Err(BuildGridError::DegenerateDims {
                width: self.width,
                height: self.height,
            });
        }
        if self.layers.is_empty() {
            return Err(BuildGridError::NoLayers);
        }
        for dir in [Direction::Horizontal, Direction::Vertical] {
            if !self.layers.iter().any(|l| l.direction == dir) {
                return Err(BuildGridError::MissingDirection(dir));
            }
        }
        for (i, l) in self.layers.iter().enumerate() {
            for (value, what) in [
                (l.unit_resistance, "resistance"),
                (l.unit_capacitance, "capacitance"),
                (l.wire_width, "wire width"),
                (l.wire_spacing, "wire spacing"),
            ] {
                // `is_nan` guard folded in: NaN must be rejected too.
                if value.is_nan() || value <= 0.0 {
                    return Err(BuildGridError::InvalidLayerParameter { layer: i, what });
                }
            }
        }
        let via_resistance = match self.via_resistance {
            Some(t) => {
                if t.len() != self.layers.len() - 1 {
                    return Err(BuildGridError::ViaResistanceLength {
                        got: t.len(),
                        expected: self.layers.len() - 1,
                    });
                }
                t
            }
            None => self.layers[..self.layers.len() - 1]
                .iter()
                .map(|l| 0.1 * l.unit_resistance)
                .collect(),
        };

        let n_h_edges = (self.width as usize - 1) * self.height as usize;
        let n_v_edges = self.width as usize * (self.height as usize - 1);
        let n_cells = self.width as usize * self.height as usize;
        let mut cap = Vec::with_capacity(self.layers.len());
        let mut usage = Vec::with_capacity(self.layers.len());
        let mut via_usage = Vec::with_capacity(self.layers.len());
        for l in &self.layers {
            let n = match l.direction {
                Direction::Horizontal => n_h_edges,
                Direction::Vertical => n_v_edges,
            };
            cap.push(vec![l.default_capacity; n]);
            usage.push(vec![0u32; n]);
            via_usage.push(vec![0u32; n_cells]);
        }
        Ok(Grid {
            width: self.width,
            height: self.height,
            tile_width: self.tile_width,
            tile_height: self.tile_height,
            via_width: self.via_width,
            via_spacing: self.via_spacing,
            layers: self.layers,
            via_resistance,
            cap,
            usage,
            via_usage,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_degenerate_grid() {
        let err = GridBuilder::new(1, 1)
            .alternating_layers(2, Direction::Horizontal)
            .build()
            .unwrap_err();
        assert!(matches!(err, BuildGridError::DegenerateDims { .. }));
    }

    #[test]
    fn rejects_empty_layer_stack() {
        let err = GridBuilder::new(4, 4).build().unwrap_err();
        assert_eq!(err, BuildGridError::NoLayers);
    }

    #[test]
    fn rejects_single_direction() {
        let err = GridBuilder::new(4, 4)
            .push_layer(Layer::new("M1", Direction::Horizontal))
            .push_layer(Layer::new("M2", Direction::Horizontal))
            .build()
            .unwrap_err();
        assert_eq!(err, BuildGridError::MissingDirection(Direction::Vertical));
    }

    #[test]
    fn rejects_bad_via_table() {
        let err = GridBuilder::new(4, 4)
            .alternating_layers(4, Direction::Horizontal)
            .via_resistances(vec![1.0])
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            BuildGridError::ViaResistanceLength {
                got: 1,
                expected: 3
            }
        );
    }

    #[test]
    fn rejects_nonpositive_rc() {
        let err = GridBuilder::new(4, 4)
            .push_layer(Layer::new("M1", Direction::Horizontal).with_rc(0.0, 1.0))
            .push_layer(Layer::new("M2", Direction::Vertical))
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            BuildGridError::InvalidLayerParameter {
                layer: 0,
                what: "resistance"
            }
        ));
    }

    #[test]
    fn default_via_table_has_right_length() {
        let g = GridBuilder::new(4, 4)
            .alternating_layers(6, Direction::Horizontal)
            .build()
            .unwrap();
        // 6 layers -> 5 boundaries; probing the last one must not panic.
        let _ = g.via_resistance(4);
    }

    #[test]
    fn resistance_profile_decreases_with_height() {
        let g = GridBuilder::new(4, 4)
            .alternating_layers(8, Direction::Horizontal)
            .build()
            .unwrap();
        let r0 = g.layer(0).unit_resistance;
        let r7 = g.layer(7).unit_resistance;
        assert!(r7 < r0, "top layer must be less resistive: {r7} vs {r0}");
    }
}
