//! Geometric primitives of the 2-D grid projection.

use std::fmt;

/// Preferred routing direction of a metal layer, and the orientation of a
/// routing edge.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum Direction {
    /// Wires run along the x axis.
    Horizontal,
    /// Wires run along the y axis.
    Vertical,
}

impl Direction {
    /// The other direction.
    ///
    /// ```
    /// use grid::Direction;
    /// assert_eq!(Direction::Horizontal.flipped(), Direction::Vertical);
    /// ```
    #[must_use]
    pub fn flipped(self) -> Direction {
        match self {
            Direction::Horizontal => Direction::Vertical,
            Direction::Vertical => Direction::Horizontal,
        }
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Direction::Horizontal => f.write_str("horizontal"),
            Direction::Vertical => f.write_str("vertical"),
        }
    }
}

/// A tile of the grid, addressed by its integer coordinates.
///
/// Cells double as routing-graph vertices: vias are stacked through cells.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord, Default)]
pub struct Cell {
    /// Column index, `0..grid.width()`.
    pub x: u16,
    /// Row index, `0..grid.height()`.
    pub y: u16,
}

impl Cell {
    /// Creates a cell at `(x, y)`.
    pub fn new(x: u16, y: u16) -> Cell {
        Cell { x, y }
    }

    /// Rectilinear (Manhattan) distance to `other`, in tiles.
    ///
    /// ```
    /// use grid::Cell;
    /// assert_eq!(Cell::new(1, 2).manhattan(Cell::new(4, 0)), 5);
    /// ```
    pub fn manhattan(self, other: Cell) -> u32 {
        self.x.abs_diff(other.x) as u32 + self.y.abs_diff(other.y) as u32
    }
}

impl fmt::Display for Cell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl From<(u16, u16)> for Cell {
    fn from((x, y): (u16, u16)) -> Cell {
        Cell::new(x, y)
    }
}

/// A unit routing edge in the 2-D projection of the grid.
///
/// A horizontal edge at cell `(x, y)` connects tiles `(x, y)` and
/// `(x + 1, y)`; a vertical edge connects `(x, y)` and `(x, y + 1)`.
/// The same 2-D edge exists on every layer whose preferred direction
/// matches `dir`; per-layer capacity and usage are tracked by
/// [`crate::Grid`].
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct Edge2d {
    /// The lower-coordinate endpoint of the edge.
    pub cell: Cell,
    /// Orientation of the edge.
    pub dir: Direction,
}

impl Edge2d {
    /// Creates a horizontal edge between `(x, y)` and `(x + 1, y)`.
    pub fn horizontal(x: u16, y: u16) -> Edge2d {
        Edge2d {
            cell: Cell::new(x, y),
            dir: Direction::Horizontal,
        }
    }

    /// Creates a vertical edge between `(x, y)` and `(x, y + 1)`.
    pub fn vertical(x: u16, y: u16) -> Edge2d {
        Edge2d {
            cell: Cell::new(x, y),
            dir: Direction::Vertical,
        }
    }

    /// The two endpoints of this edge, lower coordinate first.
    ///
    /// ```
    /// use grid::{Cell, Edge2d};
    /// let e = Edge2d::horizontal(3, 5);
    /// assert_eq!(e.endpoints(), (Cell::new(3, 5), Cell::new(4, 5)));
    /// ```
    pub fn endpoints(self) -> (Cell, Cell) {
        let a = self.cell;
        let b = match self.dir {
            Direction::Horizontal => Cell::new(a.x + 1, a.y),
            Direction::Vertical => Cell::new(a.x, a.y + 1),
        };
        (a, b)
    }

    /// The edge between two rectilinearly adjacent cells, or `None` if the
    /// cells are not adjacent.
    ///
    /// ```
    /// use grid::{Cell, Edge2d};
    /// let e = Edge2d::between(Cell::new(4, 5), Cell::new(3, 5));
    /// assert_eq!(e, Some(Edge2d::horizontal(3, 5)));
    /// assert_eq!(Edge2d::between(Cell::new(0, 0), Cell::new(1, 1)), None);
    /// ```
    pub fn between(a: Cell, b: Cell) -> Option<Edge2d> {
        let (lo, hi) = if (a.x, a.y) <= (b.x, b.y) {
            (a, b)
        } else {
            (b, a)
        };
        if lo.y == hi.y && lo.x + 1 == hi.x {
            Some(Edge2d {
                cell: lo,
                dir: Direction::Horizontal,
            })
        } else if lo.x == hi.x && lo.y + 1 == hi.y {
            Some(Edge2d {
                cell: lo,
                dir: Direction::Vertical,
            })
        } else {
            None
        }
    }
}

impl fmt::Display for Edge2d {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (a, b) = self.endpoints();
        write!(f, "{a}-{b}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direction_flip_is_involutive() {
        for d in [Direction::Horizontal, Direction::Vertical] {
            assert_eq!(d.flipped().flipped(), d);
        }
    }

    #[test]
    fn manhattan_is_symmetric() {
        let a = Cell::new(3, 9);
        let b = Cell::new(7, 2);
        assert_eq!(a.manhattan(b), b.manhattan(a));
        assert_eq!(a.manhattan(a), 0);
    }

    #[test]
    fn edge_between_orders_endpoints() {
        let e = Edge2d::between(Cell::new(2, 7), Cell::new(2, 6)).unwrap();
        assert_eq!(e, Edge2d::vertical(2, 6));
        let (a, b) = e.endpoints();
        assert!(a < b);
    }

    #[test]
    fn edge_between_rejects_non_adjacent() {
        assert_eq!(Edge2d::between(Cell::new(0, 0), Cell::new(2, 0)), None);
        assert_eq!(Edge2d::between(Cell::new(0, 0), Cell::new(0, 0)), None);
        assert_eq!(Edge2d::between(Cell::new(1, 1), Cell::new(2, 2)), None);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Edge2d::horizontal(1, 2).to_string(), "(1, 2)-(2, 2)");
        assert_eq!(Cell::new(1, 2).to_string(), "(1, 2)");
        assert_eq!(Direction::Horizontal.to_string(), "horizontal");
    }
}
