//! 3-D global-routing grid graph.
//!
//! This crate models the routing fabric that layer assignment operates on:
//! a stack of unidirectional metal layers over a 2-D array of rectangular
//! tiles (the *grid*), with
//!
//! * per-layer, per-edge **wire capacities** (how many routed wires may
//!   cross a tile boundary on a given layer), and
//! * per-tile, per-layer **via capacities** derived from the wire
//!   capacities of the adjacent edges (Eqn. (1) of the DAC'16 CPLA paper).
//!
//! The grid also tracks current **usage** (wires per edge per layer, vias
//! per tile per layer) so that incremental layer assignment can compute
//! residual capacities and overflow counts.
//!
//! # Example
//!
//! ```
//! use grid::{Direction, GridBuilder};
//!
//! # fn main() -> Result<(), grid::BuildGridError> {
//! let grid = GridBuilder::new(8, 8)
//!     .alternating_layers(4, Direction::Horizontal)
//!     .uniform_capacity(10)
//!     .build()?;
//! assert_eq!(grid.num_layers(), 4);
//! assert_eq!(grid.layer(0).direction, Direction::Horizontal);
//! assert_eq!(grid.layer(1).direction, Direction::Vertical);
//! # Ok(())
//! # }
//! ```

mod builder;
mod error;
mod geom;
mod grid;
mod layer;

pub use builder::GridBuilder;
pub use error::{BuildGridError, GridError};
pub use geom::{Cell, Direction, Edge2d};
pub use grid::{Grid, UsageSnapshot};
pub use layer::Layer;
