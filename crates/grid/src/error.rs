//! Error types for grid construction.

use std::error::Error;
use std::fmt;

/// Error returned by [`crate::GridBuilder::build`] when the described grid
/// is not well formed.
#[derive(Clone, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum BuildGridError {
    /// Grid must be at least 2×1 (or 1×2) tiles so at least one routing
    /// edge exists.
    DegenerateDims {
        /// Requested width in tiles.
        width: u16,
        /// Requested height in tiles.
        height: u16,
    },
    /// At least one layer is required.
    NoLayers,
    /// Both a horizontal and a vertical layer are required to route
    /// arbitrary nets.
    MissingDirection(crate::Direction),
    /// A layer has a non-positive electrical or geometric parameter.
    InvalidLayerParameter {
        /// Index of the offending layer.
        layer: usize,
        /// Name of the parameter that was rejected.
        what: &'static str,
    },
    /// The via-resistance table length must be `num_layers - 1`.
    ViaResistanceLength {
        /// Provided table length.
        got: usize,
        /// Required table length.
        expected: usize,
    },
}

impl fmt::Display for BuildGridError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildGridError::DegenerateDims { width, height } => {
                write!(f, "grid of {width}x{height} tiles has no routing edges")
            }
            BuildGridError::NoLayers => f.write_str("grid has no layers"),
            BuildGridError::MissingDirection(d) => {
                write!(f, "grid has no {d} layer")
            }
            BuildGridError::InvalidLayerParameter { layer, what } => {
                write!(f, "layer {layer} has non-positive {what}")
            }
            BuildGridError::ViaResistanceLength { got, expected } => {
                write!(
                    f,
                    "via resistance table has {got} entries, expected {expected}"
                )
            }
        }
    }
}

impl Error for BuildGridError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_lowercase_and_informative() {
        let e = BuildGridError::DegenerateDims {
            width: 1,
            height: 1,
        };
        let msg = e.to_string();
        assert!(msg.contains("1x1"));
        assert!(msg.chars().next().unwrap().is_lowercase());
    }
}
