//! Error types for grid construction and capacity-model edits.

use std::error::Error;
use std::fmt;

/// Error returned by [`crate::GridBuilder::build`] and the fallible
/// capacity-model edits when the described grid is not well formed.
#[derive(Clone, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum GridError {
    /// Grid must be at least 2×1 (or 1×2) tiles so at least one routing
    /// edge exists.
    DegenerateDims {
        /// Requested width in tiles.
        width: u16,
        /// Requested height in tiles.
        height: u16,
    },
    /// At least one layer is required.
    NoLayers,
    /// Both a horizontal and a vertical layer are required to route
    /// arbitrary nets.
    MissingDirection(crate::Direction),
    /// A layer has a non-positive electrical or geometric parameter.
    InvalidLayerParameter {
        /// Index of the offending layer.
        layer: usize,
        /// Name of the parameter that was rejected.
        what: &'static str,
    },
    /// The via-resistance table length must be `num_layers - 1`.
    ViaResistanceLength {
        /// Provided table length.
        got: usize,
        /// Required table length.
        expected: usize,
    },
    /// A capacity adjustment names an edge or layer the grid cannot
    /// honor (out-of-range layer, non-adjacent tiles, wrong direction).
    InvalidAdjustment {
        /// Human-readable description of the offending adjustment.
        detail: String,
    },
}

/// Former name of [`GridError`], kept for source compatibility.
pub type BuildGridError = GridError;

impl fmt::Display for GridError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GridError::DegenerateDims { width, height } => {
                write!(f, "grid of {width}x{height} tiles has no routing edges")
            }
            GridError::NoLayers => f.write_str("grid has no layers"),
            GridError::MissingDirection(d) => {
                write!(f, "grid has no {d} layer")
            }
            GridError::InvalidLayerParameter { layer, what } => {
                write!(f, "layer {layer} has non-positive {what}")
            }
            GridError::ViaResistanceLength { got, expected } => {
                write!(
                    f,
                    "via resistance table has {got} entries, expected {expected}"
                )
            }
            GridError::InvalidAdjustment { detail } => {
                write!(f, "invalid capacity adjustment: {detail}")
            }
        }
    }
}

impl Error for GridError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_lowercase_and_informative() {
        let e = GridError::DegenerateDims {
            width: 1,
            height: 1,
        };
        let msg = e.to_string();
        assert!(msg.contains("1x1"));
        assert!(msg.chars().next().unwrap().is_lowercase());
    }

    #[test]
    fn adjustment_errors_carry_the_detail() {
        let e = GridError::InvalidAdjustment {
            detail: "layer 9 out of range".into(),
        };
        assert!(e.to_string().contains("layer 9"));
    }
}
