//! The 3-D routing grid: capacities, usage tracking and overflow metrics.

use crate::{Cell, Direction, Edge2d, Layer};

/// The 3-D global-routing grid.
///
/// A grid is `width × height` tiles and a stack of unidirectional
/// [`Layer`]s. For every layer the grid stores the wire capacity and the
/// current wire usage of each routing edge of that layer's direction, plus
/// the via usage stacked through every tile.
///
/// Construct with [`crate::GridBuilder`].
///
/// # Edge addressing
///
/// Routing edges are addressed by [`Edge2d`] (2-D projection) together with
/// a layer index; the layer's preferred direction must match the edge
/// orientation. Horizontal edges exist for `x ∈ 0..width-1`, vertical edges
/// for `y ∈ 0..height-1`.
#[derive(Clone, PartialEq, Debug)]
pub struct Grid {
    pub(crate) width: u16,
    pub(crate) height: u16,
    pub(crate) tile_width: f64,
    pub(crate) tile_height: f64,
    pub(crate) via_width: f64,
    pub(crate) via_spacing: f64,
    pub(crate) layers: Vec<Layer>,
    /// Resistance of a via between layer `l` and `l + 1` (Ω).
    pub(crate) via_resistance: Vec<f64>,
    /// Per layer: capacity of each edge of that layer's direction.
    pub(crate) cap: Vec<Vec<u32>>,
    /// Per layer: wires currently crossing each edge.
    pub(crate) usage: Vec<Vec<u32>>,
    /// Per layer: vias currently passing *through* that layer at each cell.
    pub(crate) via_usage: Vec<Vec<u32>>,
}

/// Opaque copy of a grid's usage state, for what-if exploration.
///
/// Created by [`Grid::snapshot_usage`] and consumed by
/// [`Grid::restore_usage`].
#[derive(Clone, PartialEq, Debug)]
pub struct UsageSnapshot {
    usage: Vec<Vec<u32>>,
    via_usage: Vec<Vec<u32>>,
}

impl Grid {
    // ------------------------------------------------------------------
    // Dimensions and layers
    // ------------------------------------------------------------------

    /// Number of tile columns.
    pub fn width(&self) -> u16 {
        self.width
    }

    /// Number of tile rows.
    pub fn height(&self) -> u16 {
        self.height
    }

    /// Number of metal layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Physical tile width (x extent), in the same unit as wire geometry.
    pub fn tile_width(&self) -> f64 {
        self.tile_width
    }

    /// Physical tile height (y extent).
    pub fn tile_height(&self) -> f64 {
        self.tile_height
    }

    /// The layer with index `l`.
    ///
    /// # Panics
    ///
    /// Panics if `l >= self.num_layers()`.
    pub fn layer(&self, l: usize) -> &Layer {
        &self.layers[l]
    }

    /// All layers, bottom (index 0) to top.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Indices of the layers whose preferred direction is `dir`, bottom up.
    ///
    /// ```
    /// use grid::{Direction, GridBuilder};
    /// # fn main() -> Result<(), grid::BuildGridError> {
    /// let g = GridBuilder::new(4, 4)
    ///     .alternating_layers(4, Direction::Horizontal)
    ///     .build()?;
    /// let h: Vec<_> = g.layers_in_direction(Direction::Horizontal).collect();
    /// assert_eq!(h, vec![0, 2]);
    /// # Ok(())
    /// # }
    /// ```
    pub fn layers_in_direction(&self, dir: Direction) -> impl Iterator<Item = usize> + '_ {
        self.layers
            .iter()
            .enumerate()
            .filter(move |(_, l)| l.direction == dir)
            .map(|(i, _)| i)
    }

    /// Resistance of a via between layers `l` and `l + 1` (Ω).
    ///
    /// # Panics
    ///
    /// Panics if `l + 1 >= self.num_layers()`.
    pub fn via_resistance(&self, l: usize) -> f64 {
        self.via_resistance[l]
    }

    /// Total resistance of a via stack spanning layers `lo..=hi`.
    ///
    /// Returns 0 when `lo == hi`.
    ///
    /// # Panics
    ///
    /// Panics if `hi >= self.num_layers()` or `lo > hi`.
    pub fn via_stack_resistance(&self, lo: usize, hi: usize) -> f64 {
        assert!(lo <= hi && hi < self.num_layers());
        self.via_resistance[lo..hi].iter().sum()
    }

    /// Number of vias a single routing track can host inside one tile
    /// (`n_v` of constraint (4d) in the paper).
    pub fn vias_per_track(&self) -> u32 {
        let pitch = self.via_width + self.via_spacing;
        if pitch <= 0.0 {
            return 0;
        }
        (self.tile_width / pitch).floor() as u32
    }

    // ------------------------------------------------------------------
    // Edge iteration and validation
    // ------------------------------------------------------------------

    /// Whether `cell` lies inside the grid.
    pub fn contains(&self, cell: Cell) -> bool {
        cell.x < self.width && cell.y < self.height
    }

    /// Whether `edge` is a valid routing edge of this grid.
    pub fn contains_edge(&self, edge: Edge2d) -> bool {
        match edge.dir {
            Direction::Horizontal => edge.cell.x + 1 < self.width && edge.cell.y < self.height,
            Direction::Vertical => edge.cell.x < self.width && edge.cell.y + 1 < self.height,
        }
    }

    /// Iterates over every routing edge of orientation `dir`.
    pub fn edges_in_direction(&self, dir: Direction) -> impl Iterator<Item = Edge2d> + '_ {
        let (nx, ny) = match dir {
            Direction::Horizontal => (self.width - 1, self.height),
            Direction::Vertical => (self.width, self.height - 1),
        };
        (0..ny).flat_map(move |y| {
            (0..nx).map(move |x| Edge2d {
                cell: Cell::new(x, y),
                dir,
            })
        })
    }

    /// Iterates over every tile of the grid in row-major order.
    pub fn cells(&self) -> impl Iterator<Item = Cell> + '_ {
        let (w, h) = (self.width, self.height);
        (0..h).flat_map(move |y| (0..w).map(move |x| Cell::new(x, y)))
    }

    /// Number of routing edges of orientation `dir`.
    pub fn num_edges(&self, dir: Direction) -> usize {
        match dir {
            Direction::Horizontal => (self.width as usize - 1) * self.height as usize,
            Direction::Vertical => self.width as usize * (self.height as usize - 1),
        }
    }

    /// Flat index of `edge` within its direction's edge array — stable
    /// across calls, dense in `0..self.num_edges(edge.dir)`. Useful for
    /// callers maintaining per-edge side tables (e.g. Lagrange
    /// multipliers).
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the edge is out of bounds.
    pub fn edge_flat_index(&self, edge: Edge2d) -> usize {
        self.edge_index(edge)
    }

    /// Flat row-major index of `cell`, dense in
    /// `0..width() * height()`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the cell is out of bounds.
    pub fn cell_flat_index(&self, cell: Cell) -> usize {
        self.cell_index(cell)
    }

    /// Flat index of `edge` within its direction's edge array.
    pub(crate) fn edge_index(&self, edge: Edge2d) -> usize {
        debug_assert!(self.contains_edge(edge), "edge {edge} out of bounds");
        match edge.dir {
            Direction::Horizontal => {
                edge.cell.y as usize * (self.width as usize - 1) + edge.cell.x as usize
            }
            Direction::Vertical => {
                edge.cell.y as usize * self.width as usize + edge.cell.x as usize
            }
        }
    }

    fn cell_index(&self, cell: Cell) -> usize {
        debug_assert!(self.contains(cell), "cell {cell} out of bounds");
        cell.y as usize * self.width as usize + cell.x as usize
    }

    fn check_layer_edge(&self, layer: usize, edge: Edge2d) {
        assert!(layer < self.num_layers(), "layer {layer} out of range");
        assert!(
            self.layers[layer].direction == edge.dir,
            "edge {edge} does not match direction of layer {layer}"
        );
        assert!(self.contains_edge(edge), "edge {edge} out of bounds");
    }

    // ------------------------------------------------------------------
    // Wire capacity and usage
    // ------------------------------------------------------------------

    /// Wire capacity of `edge` on `layer`.
    ///
    /// # Panics
    ///
    /// Panics if the layer index is out of range, the layer direction does
    /// not match the edge orientation, or the edge is out of bounds.
    pub fn edge_capacity(&self, layer: usize, edge: Edge2d) -> u32 {
        self.check_layer_edge(layer, edge);
        self.cap[layer][self.edge_index(edge)]
    }

    /// Overrides the wire capacity of `edge` on `layer` (used for ISPD'08
    /// capacity adjustments and blockage modelling).
    ///
    /// # Panics
    ///
    /// Same conditions as [`Grid::edge_capacity`].
    pub fn set_edge_capacity(&mut self, layer: usize, edge: Edge2d, cap: u32) {
        self.check_layer_edge(layer, edge);
        let idx = self.edge_index(edge);
        self.cap[layer][idx] = cap;
    }

    /// Number of wires currently routed across `edge` on `layer`.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Grid::edge_capacity`].
    pub fn edge_usage(&self, layer: usize, edge: Edge2d) -> u32 {
        self.check_layer_edge(layer, edge);
        self.usage[layer][self.edge_index(edge)]
    }

    /// Remaining capacity of `edge` on `layer` (zero when overflowed).
    ///
    /// # Panics
    ///
    /// Same conditions as [`Grid::edge_capacity`].
    pub fn edge_residual(&self, layer: usize, edge: Edge2d) -> u32 {
        self.check_layer_edge(layer, edge);
        let idx = self.edge_index(edge);
        self.cap[layer][idx].saturating_sub(self.usage[layer][idx])
    }

    /// Records one more wire crossing `edge` on `layer`.
    ///
    /// Overflow is permitted (and counted by
    /// [`Grid::total_wire_overflow`]); callers that must stay legal check
    /// [`Grid::edge_residual`] first.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Grid::edge_capacity`].
    pub fn add_wire(&mut self, layer: usize, edge: Edge2d) {
        self.check_layer_edge(layer, edge);
        let idx = self.edge_index(edge);
        self.usage[layer][idx] += 1;
    }

    /// Removes one wire from `edge` on `layer`.
    ///
    /// # Panics
    ///
    /// Panics if no wire is recorded on the edge, plus the conditions of
    /// [`Grid::edge_capacity`].
    pub fn remove_wire(&mut self, layer: usize, edge: Edge2d) {
        self.check_layer_edge(layer, edge);
        let idx = self.edge_index(edge);
        assert!(
            self.usage[layer][idx] > 0,
            "removing wire from empty edge {edge} on layer {layer}"
        );
        self.usage[layer][idx] -= 1;
    }

    // ------------------------------------------------------------------
    // Via capacity and usage
    // ------------------------------------------------------------------

    /// Via capacity of `cell` on `layer`, per Eqn. (1) of the paper:
    ///
    /// ```text
    /// cap_g(l) = ⌊ (w_w + w_s) · Tile_w · (cap_e0(l) + cap_e1(l))
    ///             / (v_w + v_s)² ⌋
    /// ```
    ///
    /// where `e0`, `e1` are the two edges of layer `l` incident on the
    /// cell along the layer's routing direction (missing boundary edges
    /// contribute zero capacity). If both edges are fully occupied by
    /// wires, no vias can pass through the cell on this layer.
    ///
    /// # Panics
    ///
    /// Panics if the layer index or cell is out of range.
    pub fn via_capacity(&self, cell: Cell, layer: usize) -> u32 {
        assert!(layer < self.num_layers(), "layer {layer} out of range");
        assert!(self.contains(cell), "cell {cell} out of bounds");
        let lay = &self.layers[layer];
        let dir = lay.direction;
        let mut edge_cap_sum = 0u64;
        // The "previous" edge (left of / below the cell)...
        let prev = match dir {
            Direction::Horizontal if cell.x > 0 => Some(Edge2d::horizontal(cell.x - 1, cell.y)),
            Direction::Vertical if cell.y > 0 => Some(Edge2d::vertical(cell.x, cell.y - 1)),
            _ => None,
        };
        // ...and the "next" edge (right of / above the cell).
        let next = match dir {
            Direction::Horizontal => Edge2d::horizontal(cell.x, cell.y),
            Direction::Vertical => Edge2d::vertical(cell.x, cell.y),
        };
        if let Some(e) = prev {
            edge_cap_sum += self.cap[layer][self.edge_index(e)] as u64;
        }
        if self.contains_edge(next) {
            edge_cap_sum += self.cap[layer][self.edge_index(next)] as u64;
        }
        let via_pitch = self.via_width + self.via_spacing;
        if via_pitch <= 0.0 {
            return 0;
        }
        let tile_extent = match dir {
            Direction::Horizontal => self.tile_width,
            Direction::Vertical => self.tile_height,
        };
        let cap = lay.pitch() * tile_extent * edge_cap_sum as f64 / (via_pitch * via_pitch);
        cap.floor().max(0.0) as u32
    }

    /// Number of vias currently passing through `cell` on `layer`.
    ///
    /// # Panics
    ///
    /// Panics if the layer index or cell is out of range.
    pub fn via_usage(&self, cell: Cell, layer: usize) -> u32 {
        assert!(layer < self.num_layers(), "layer {layer} out of range");
        self.via_usage[layer][self.cell_index(cell)]
    }

    /// Records a via stack at `cell` spanning layers `lo..=hi`.
    ///
    /// Following constraint (4d) of the paper, the stack consumes via
    /// capacity on every layer *strictly between* its endpoints; a
    /// single-hop via (`hi == lo + 1`) consumes none.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`, `hi >= self.num_layers()`, or the cell is out
    /// of range.
    pub fn add_via_stack(&mut self, cell: Cell, lo: usize, hi: usize) {
        assert!(lo <= hi && hi < self.num_layers());
        let idx = self.cell_index(cell);
        for l in (lo + 1)..hi {
            self.via_usage[l][idx] += 1;
        }
    }

    /// Removes a via stack previously recorded with
    /// [`Grid::add_via_stack`].
    ///
    /// # Panics
    ///
    /// Panics if the stack was not recorded (usage underflow) or the
    /// arguments are out of range.
    pub fn remove_via_stack(&mut self, cell: Cell, lo: usize, hi: usize) {
        assert!(lo <= hi && hi < self.num_layers());
        let idx = self.cell_index(cell);
        for l in (lo + 1)..hi {
            assert!(
                self.via_usage[l][idx] > 0,
                "removing via from empty cell {cell} on layer {l}"
            );
            self.via_usage[l][idx] -= 1;
        }
    }

    // ------------------------------------------------------------------
    // Overflow metrics
    // ------------------------------------------------------------------

    /// Total wire overflow: `Σ max(0, usage − cap)` over all layer edges.
    pub fn total_wire_overflow(&self) -> u64 {
        let mut total = 0u64;
        for l in 0..self.num_layers() {
            for (u, c) in self.usage[l].iter().zip(&self.cap[l]) {
                total += u.saturating_sub(*c) as u64;
            }
        }
        total
    }

    /// Total via overflow (the paper's `OV#`): `Σ max(0, via_usage −
    /// via_cap)` over all cells and layers.
    pub fn total_via_overflow(&self) -> u64 {
        let mut total = 0u64;
        for l in 0..self.num_layers() {
            for cell in self.cells() {
                let u = self.via_usage[l][self.cell_index(cell)];
                let c = self.via_capacity(cell, l);
                total += u.saturating_sub(c) as u64;
            }
        }
        total
    }

    // ------------------------------------------------------------------
    // 2-D projection (used by the initial global router)
    // ------------------------------------------------------------------

    /// Combined wire capacity of `edge` over all layers of its direction.
    ///
    /// # Panics
    ///
    /// Panics if the edge is out of bounds.
    pub fn projected_capacity(&self, edge: Edge2d) -> u32 {
        assert!(self.contains_edge(edge), "edge {edge} out of bounds");
        let idx = self.edge_index(edge);
        self.layers_in_direction(edge.dir)
            .map(|l| self.cap[l][idx])
            .sum()
    }

    /// Combined wire usage of `edge` over all layers of its direction.
    ///
    /// # Panics
    ///
    /// Panics if the edge is out of bounds.
    pub fn projected_usage(&self, edge: Edge2d) -> u32 {
        assert!(self.contains_edge(edge), "edge {edge} out of bounds");
        let idx = self.edge_index(edge);
        self.layers_in_direction(edge.dir)
            .map(|l| self.usage[l][idx])
            .sum()
    }

    // ------------------------------------------------------------------
    // Snapshots
    // ------------------------------------------------------------------

    /// Captures the current wire and via usage.
    pub fn snapshot_usage(&self) -> UsageSnapshot {
        UsageSnapshot {
            usage: self.usage.clone(),
            via_usage: self.via_usage.clone(),
        }
    }

    /// Restores usage captured by [`Grid::snapshot_usage`].
    ///
    /// # Panics
    ///
    /// Panics if the snapshot was taken from a grid of different shape.
    pub fn restore_usage(&mut self, snapshot: UsageSnapshot) {
        assert_eq!(snapshot.usage.len(), self.usage.len());
        for (a, b) in snapshot.usage.iter().zip(&self.usage) {
            assert_eq!(a.len(), b.len(), "snapshot shape mismatch");
        }
        self.usage = snapshot.usage;
        self.via_usage = snapshot.via_usage;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GridBuilder;

    fn grid4() -> Grid {
        GridBuilder::new(4, 3)
            .alternating_layers(4, Direction::Horizontal)
            .uniform_capacity(5)
            .build()
            .unwrap()
    }

    #[test]
    fn edge_counts_match_dims() {
        let g = grid4();
        assert_eq!(
            g.edges_in_direction(Direction::Horizontal).count(),
            3 * 3 // (width-1) * height
        );
        assert_eq!(
            g.edges_in_direction(Direction::Vertical).count(),
            4 * 2 // width * (height-1)
        );
        assert_eq!(g.cells().count(), 12);
    }

    #[test]
    fn wire_usage_roundtrip() {
        let mut g = grid4();
        let e = Edge2d::horizontal(1, 1);
        assert_eq!(g.edge_usage(0, e), 0);
        g.add_wire(0, e);
        g.add_wire(0, e);
        assert_eq!(g.edge_usage(0, e), 2);
        assert_eq!(g.edge_residual(0, e), 3);
        g.remove_wire(0, e);
        assert_eq!(g.edge_usage(0, e), 1);
    }

    #[test]
    #[should_panic(expected = "does not match direction")]
    fn wrong_direction_layer_panics() {
        let g = grid4();
        // Layer 1 is vertical; horizontal edge should be rejected.
        g.edge_capacity(1, Edge2d::horizontal(0, 0));
    }

    #[test]
    #[should_panic(expected = "removing wire from empty edge")]
    fn remove_from_empty_edge_panics() {
        let mut g = grid4();
        g.remove_wire(0, Edge2d::horizontal(0, 0));
    }

    #[test]
    fn overflow_counts_excess_only() {
        let mut g = grid4();
        let e = Edge2d::horizontal(0, 0);
        for _ in 0..7 {
            g.add_wire(0, e);
        }
        // capacity 5, usage 7 -> overflow 2
        assert_eq!(g.total_wire_overflow(), 2);
    }

    #[test]
    fn via_capacity_boundary_cells_have_less() {
        let g = grid4();
        // Layer 0 horizontal: an interior cell has two adjacent H edges,
        // a corner cell only one, so interior capacity must be larger.
        let interior = g.via_capacity(Cell::new(1, 1), 0);
        let corner = g.via_capacity(Cell::new(0, 0), 0);
        assert!(interior > corner, "{interior} vs {corner}");
        assert_eq!(interior, 2 * corner);
    }

    #[test]
    fn via_stack_consumes_interior_layers_only() {
        let mut g = grid4();
        let c = Cell::new(2, 1);
        g.add_via_stack(c, 0, 3);
        assert_eq!(g.via_usage(c, 0), 0);
        assert_eq!(g.via_usage(c, 1), 1);
        assert_eq!(g.via_usage(c, 2), 1);
        assert_eq!(g.via_usage(c, 3), 0);
        // Single-hop via consumes nothing.
        g.add_via_stack(c, 1, 2);
        assert_eq!(g.via_usage(c, 1), 1);
        g.remove_via_stack(c, 0, 3);
        assert_eq!(g.via_usage(c, 1), 0);
        assert_eq!(g.via_usage(c, 2), 0);
    }

    #[test]
    fn projected_capacity_sums_layers() {
        let g = grid4();
        // 2 horizontal layers (0 and 2) with capacity 5 each.
        assert_eq!(g.projected_capacity(Edge2d::horizontal(0, 0)), 10);
    }

    #[test]
    fn snapshot_restores_usage() {
        let mut g = grid4();
        let snap = g.snapshot_usage();
        g.add_wire(0, Edge2d::horizontal(0, 0));
        g.add_via_stack(Cell::new(1, 1), 0, 2);
        assert_eq!(g.edge_usage(0, Edge2d::horizontal(0, 0)), 1);
        g.restore_usage(snap);
        assert_eq!(g.edge_usage(0, Edge2d::horizontal(0, 0)), 0);
        assert_eq!(g.via_usage(Cell::new(1, 1), 1), 0);
    }

    #[test]
    fn edge_flat_index_is_a_bijection() {
        let g = grid4();
        for dir in [Direction::Horizontal, Direction::Vertical] {
            let mut seen = vec![false; g.num_edges(dir)];
            for e in g.edges_in_direction(dir) {
                let idx = g.edge_flat_index(e);
                assert!(idx < seen.len(), "{e} -> {idx} out of range");
                assert!(!seen[idx], "{e} collides at {idx}");
                seen[idx] = true;
            }
            assert!(seen.iter().all(|&s| s), "indices not dense for {dir}");
        }
    }

    #[test]
    fn cell_flat_index_is_dense() {
        let g = grid4();
        let mut seen = [false; 4 * 3];
        for c in g.cells() {
            let idx = g.cell_flat_index(c);
            assert!(!seen[idx]);
            seen[idx] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn via_stack_resistance_sums_boundaries() {
        let g = grid4();
        let r01 = g.via_resistance(0);
        let r12 = g.via_resistance(1);
        assert!((g.via_stack_resistance(0, 2) - (r01 + r12)).abs() < 1e-12);
        assert_eq!(g.via_stack_resistance(1, 1), 0.0);
    }
}
