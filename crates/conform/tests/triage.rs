//! Scratch triage harness (not part of the suite by default).

use flow::Metrics;

#[test]
#[ignore = "manual triage tool"]
fn triage_reproducer() {
    let path = std::env::var("CONFORM_REPRO").expect("set CONFORM_REPRO=<file>");
    let text = std::fs::read_to_string(&path).unwrap();
    let w = conform::io::workload_from_str(&text).unwrap();
    let inst = w.instance().unwrap();
    let released = w.released().unwrap();
    println!("released nets: {released:?}");
    let opt = conform::oracle::solve(&inst, &released, 1 << 20).unwrap();
    println!(
        "oracle best avg_tcp {} over {} combos ({} feasible)",
        opt.best_avg_tcp, opt.combos, opt.feasible
    );
    for (k, &ni) in released.iter().enumerate() {
        println!(
            "  net {ni} ({}) oracle layers {:?} initial {:?}",
            inst.netlist().net(ni).name(),
            opt.best_layers[k],
            inst.assignment().net_layers(ni)
        );
    }
    let initial = Metrics::measure(inst.grid(), inst.netlist(), inst.assignment(), &released);
    println!("initial avg_tcp {}", initial.avg_tcp);

    for threads in [1usize] {
        let backend = conform::cpla_backend(w.critical_ratio, threads);
        let mut i2 = inst.clone();
        let report = i2.run(&backend).unwrap();
        println!(
            "cpla rounds={} final avg_tcp {} (initial {})",
            report.rounds, report.final_metrics.avg_tcp, report.initial_metrics.avg_tcp
        );
        {
            let mut grid = inst.grid().clone();
            let mut assignment = inst.assignment().clone();
            let engine = cpla::Cpla::new(cpla::CplaConfig {
                critical_ratio: w.critical_ratio,
                threads,
                release_neighbors: false,
                ..cpla::CplaConfig::default()
            });
            let full = engine
                .run(&mut grid, inst.netlist(), &mut assignment)
                .unwrap();
            println!(
                "  stats: evaluations={} gate_accepted={} gate_rejected={} rounds={:?}",
                full.stats.evaluations,
                full.stats.gate_accepted,
                full.stats.gate_rejected,
                full.rounds
            );
        }
        {
            // Extract the whole released set as one problem and dump it.
            let grid = inst.grid();
            let netlist = inst.netlist();
            let assignment = inst.assignment();
            let ctxmap = cpla::timing_context(grid, netlist, assignment, &released, 2.0);
            let segments: Vec<net::SegmentRef> = released
                .iter()
                .flat_map(|&ni| {
                    (0..netlist.net(ni).tree().num_segments())
                        .map(move |s| net::SegmentRef::new(ni as u32, s as u32))
                })
                .collect();
            let problem = cpla::problem::PartitionProblem::extract(
                grid,
                netlist,
                assignment,
                &segments,
                &|s| ctxmap[&s],
                &cpla::problem::ProblemConfig::default(),
            );
            for (i, (cands, costs)) in problem
                .candidates
                .iter()
                .zip(problem.linear_cost.iter())
                .enumerate()
            {
                println!("  seg {i} current={} cands={cands:?}", problem.current[i]);
                println!("    linear {costs:?}");
            }
            for p in &problem.pairs {
                println!("  pair ({},{}) costs {:?}", p.a, p.b, p.costs);
            }
            for ec in &problem.edge_constraints {
                if ec.limit == 0 {
                    println!(
                        "  edge layer={} edge={:?} limit=0 members={:?}",
                        ec.layer, ec.edge, ec.members
                    );
                }
            }
        }
        for &ni in &released {
            println!(
                "  net {ni} cpla layers {:?}",
                i2.assignment().net_layers(ni)
            );
        }
        println!(
            "  overflow wire {}->{} via {}->{}",
            inst.grid().total_wire_overflow(),
            i2.grid().total_wire_overflow(),
            inst.grid().total_via_overflow(),
            i2.grid().total_via_overflow()
        );
    }

    let tila = conform::tila_backend(w.critical_ratio);
    let mut i3 = inst.clone();
    let rt = i3.run(&tila).unwrap();
    println!("tila final avg_tcp {}", rt.final_metrics.avg_tcp);
    for &ni in &released {
        println!(
            "  net {ni} tila layers {:?}",
            i3.assignment().net_layers(ni)
        );
    }
}
