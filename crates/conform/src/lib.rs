//! Conformance tooling for the whole assignment pipeline.
//!
//! The crate bundles four pieces and a driver that composes them:
//!
//! * [`gen`] — a seeded workload generator walking a parameter lattice
//!   (layer depth, capacity tightness, degenerate corners).
//! * [`oracle`] — an exact brute-force solver for oracle-sized
//!   instances, bounding the engines' optimality gap.
//! * [`props`] — metamorphic mutations (relabel, loosen a capacity,
//!   add a top layer) whose effect on the optimum is known a priori.
//! * [`shrink`] — a greedy minimizer turning a failing workload into a
//!   reproducer small enough to read.
//!
//! [`run_trial`] drives one seeded trial end to end through every
//! [`LayerAssigner`] backend (CPLA, TILA, the Lagrangian engine, the
//! greedy floor) plus the racing portfolio, and classifies everything
//! it sees; the `cpla-conform` binary loops it over a trial budget and
//! emits serialized reproducers (see [`io`]) for every failure.

pub mod gen;
pub mod io;
pub mod json;
pub mod oracle;
pub mod props;
pub mod shrink;

pub use cpla::SolveBackend;
use cpla::{Cpla, CplaConfig};
use flow::{Cancel, FlowReport, Greedy, GreedyConfig, Instance, LayerAssigner, Metrics};
use lagrange::{Lagrange, LagrangeConfig};
use portfolio::{priced_score, Baseline, Race};
use prng::Rng;
use tila::{Tila, TilaConfig};

use gen::{GenParams, Workload};

/// Knobs of a conformance run, shared by every trial.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct TrialConfig {
    /// Master seed; trial `t` uses the decoupled stream `fork(t)`.
    pub seed: u64,
    /// Enumeration ceiling for the brute-force oracle.
    pub max_combos: u64,
    /// Gated bound on CPLA's relative optimality gap.
    pub cpla_gap_bound: f64,
    /// Gated bound on the Lagrangian engine's relative optimality gap.
    /// The dual-ascent engine is a relaxation heuristic, so its bound is
    /// looser than CPLA's.
    pub lagrange_gap_bound: f64,
    /// Gated bound on the greedy baseline's relative optimality gap.
    /// Greedy is the latency floor, not a quality engine — its bound
    /// only catches pathological regressions.
    pub greedy_gap_bound: f64,
    /// Solve backend of the CPLA engine under test. The backends are
    /// bit-identical (every trial cross-checks them regardless of this
    /// setting), so the choice only decides which execution shape the
    /// full gate battery exercises.
    pub solve_backend: SolveBackend,
}

impl Default for TrialConfig {
    fn default() -> TrialConfig {
        TrialConfig {
            seed: 42,
            // ~4 candidate layers per segment: covers every instance
            // with up to 8 released segments, i.e. the ISSUE's "roughly
            // a dozen" once 2-layer grids (2 candidates) are counted.
            max_combos: 1 << 16,
            // Calibrated, not a placeholder: the worst gated gap across
            // the CI campaign (200 trials, seed 42) is 0.0398 (trial
            // 20), so 5% leaves ~25% headroom while still catching the
            // 10–30% regressions the dead-layer pricing bugs produced.
            // `cpla-conform` prints "worst gated cpla gap" each run —
            // re-derive this constant from that line when the engine
            // legitimately moves.
            cpla_gap_bound: 0.05,
            // Calibrated like `cpla_gap_bound`, from the same 200-trial
            // seed-42 campaign: worst gated lagrange gap 0.0398 (trial
            // 20), worst gated greedy gap 0.4000 (trial 82). The bounds
            // leave ~50%/25% headroom; `cpla-conform` prints the worst
            // gated gap per backend — re-derive these from those lines
            // when an engine legitimately moves.
            lagrange_gap_bound: 0.06,
            greedy_gap_bound: 0.50,
            solve_backend: SolveBackend::PerLeaf,
        }
    }
}

/// What went wrong, coarsely — the exit taxonomy of `cpla-conform`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FailureClass {
    /// An engine left behind an invalid or misreported solution.
    InfeasibleOutput,
    /// CPLA's optimality gap exceeded the configured bound.
    GapExceeded,
    /// A metamorphic or determinism property was violated.
    PropertyViolation,
    /// A backend returned a [`flow::FlowError`] on valid input.
    Flow,
}

impl FailureClass {
    /// Short stable label used in reproducer filenames and summaries.
    pub fn label(self) -> &'static str {
        match self {
            FailureClass::InfeasibleOutput => "infeasible-output",
            FailureClass::GapExceeded => "gap-exceeded",
            FailureClass::PropertyViolation => "property-violation",
            FailureClass::Flow => "flow-error",
        }
    }
}

/// One classified failure of one trial.
#[derive(Clone, PartialEq, Debug)]
pub struct Failure {
    /// Failure taxonomy bucket.
    pub class: FailureClass,
    /// The component at fault (`"cpla"`, `"tila"`, `"generator"`, ...).
    pub assigner: &'static str,
    /// Human-readable specifics (values, bounds, deltas).
    pub detail: String,
}

/// Everything one trial produced.
#[derive(Clone, PartialEq, Debug)]
pub struct TrialOutcome {
    /// Trial index within the run.
    pub trial: u64,
    /// The lattice point exercised.
    pub params: GenParams,
    /// The generated workload (serializable via [`io`]).
    pub workload: Workload,
    /// Gated failures; empty means the trial passed.
    pub failures: Vec<Failure>,
    /// Note-only observations (engine-level metamorphic deltas etc.).
    pub notes: Vec<String>,
    /// Combinations the oracle enumerated, when it ran.
    pub oracle_combos: Option<u64>,
    /// CPLA's relative optimality gap, when the oracle ran.
    pub cpla_gap: Option<f64>,
    /// TILA's relative optimality gap (reported, never gated).
    pub tila_gap: Option<f64>,
    /// The Lagrangian engine's relative optimality gap, when the
    /// oracle ran (gated on the same trials as CPLA's, against
    /// [`TrialConfig::lagrange_gap_bound`]).
    pub lagrange_gap: Option<f64>,
    /// The greedy baseline's relative optimality gap, when the oracle
    /// ran (gated against [`TrialConfig::greedy_gap_bound`]).
    pub greedy_gap: Option<f64>,
    /// Whether this trial's CPLA gap was subject to the gated bound
    /// (oracle-sized, overflow-free input). The bound itself is
    /// calibrated from the worst gap seen across gated trials only, so
    /// the two populations must stay distinguishable downstream.
    pub gap_gated: bool,
}

impl TrialOutcome {
    /// Whether the trial produced no gated failure.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// The CPLA backend as conformance runs configure it: the workload's
/// release ratio, single-threaded, *without* neighbor release so the
/// engine optimizes exactly the net set the oracle enumerates.
pub fn cpla_backend(critical_ratio: f64, threads: usize) -> Cpla {
    cpla_backend_with(critical_ratio, threads, SolveBackend::PerLeaf)
}

/// [`cpla_backend`] with an explicit Solve-stage execution shape.
pub fn cpla_backend_with(critical_ratio: f64, threads: usize, solve_backend: SolveBackend) -> Cpla {
    Cpla::new(CplaConfig {
        critical_ratio,
        threads,
        release_neighbors: false,
        solve_backend,
        ..CplaConfig::default()
    })
}

/// The TILA baseline at the workload's release ratio.
pub fn tila_backend(critical_ratio: f64) -> Tila {
    Tila::new(TilaConfig {
        critical_ratio,
        ..TilaConfig::default()
    })
}

/// The Lagrangian dual-ascent engine at the workload's release ratio,
/// single-threaded (the DP fan-out is bit-identical at any count).
pub fn lagrange_backend(critical_ratio: f64) -> Lagrange {
    Lagrange::new(LagrangeConfig {
        critical_ratio,
        ..LagrangeConfig::default()
    })
}

/// The greedy longest-path baseline at the workload's release ratio.
pub fn greedy_backend(critical_ratio: f64) -> Greedy {
    Greedy::new(GreedyConfig { critical_ratio })
}

/// The full racing portfolio as conformance runs assemble it — the
/// same four backends the solo gates exercise, in precedence order
/// [cpla, tila, lagrange, greedy], sharing one cancellation flag.
pub fn race_backend(critical_ratio: f64, threads: usize, solve_backend: SolveBackend) -> Race {
    let cancel = Cancel::new();
    Race::with_cancel(
        vec![
            Box::new(cpla_backend_with(critical_ratio, threads, solve_backend)),
            Box::new(tila_backend(critical_ratio)),
            Box::new(Lagrange::cancellable(
                LagrangeConfig {
                    critical_ratio,
                    ..LagrangeConfig::default()
                },
                cancel.clone(),
            )),
            Box::new(Greedy::cancellable(
                GreedyConfig { critical_ratio },
                cancel.clone(),
            )),
        ],
        cancel,
    )
}

/// Runs trial `trial` of a conformance run: generate, execute both
/// backends, verify outputs, bound against the oracle, check the
/// metamorphic and determinism properties.
pub fn run_trial(cfg: &TrialConfig, trial: u64) -> TrialOutcome {
    let mut rng = Rng::seed_from_u64(cfg.seed).fork(trial);
    let params = GenParams::lattice(trial, &mut rng);
    let workload = gen::generate(&params, &mut rng);
    let mut outcome = check_workload(cfg, &workload, &mut rng);
    outcome.trial = trial;
    outcome
}

/// Classifies one workload (the replayable core of [`run_trial`]).
///
/// `rng` only feeds the metamorphic mutation choices; the workload
/// itself is taken as given, so a deserialized reproducer exercises
/// exactly the failure it was minimized to.
pub fn check_workload(cfg: &TrialConfig, workload: &Workload, rng: &mut Rng) -> TrialOutcome {
    let mut out = TrialOutcome {
        trial: workload.params.trial,
        params: workload.params.clone(),
        workload: workload.clone(),
        failures: Vec::new(),
        notes: Vec::new(),
        oracle_combos: None,
        cpla_gap: None,
        tila_gap: None,
        lagrange_gap: None,
        greedy_gap: None,
        gap_gated: false,
    };

    let inst = match workload.instance() {
        Ok(inst) => inst,
        Err(e) => {
            out.failures.push(Failure {
                class: FailureClass::Flow,
                assigner: "generator",
                detail: format!("workload does not build an instance: {e}"),
            });
            return out;
        }
    };
    let released = match inst.critical_nets(workload.critical_ratio) {
        Ok(r) => r,
        Err(e) => {
            out.failures.push(Failure {
                class: FailureClass::Flow,
                assigner: "generator",
                detail: format!("critical selection failed: {e}"),
            });
            return out;
        }
    };

    let cpla1 = cpla_backend_with(workload.critical_ratio, 1, cfg.solve_backend);
    let tila = tila_backend(workload.critical_ratio);
    let lagrange = lagrange_backend(workload.critical_ratio);
    let greedy = greedy_backend(workload.critical_ratio);
    let runs: [(&'static str, &dyn LayerAssigner); 4] = [
        ("cpla", &cpla1),
        ("tila", &tila),
        ("lagrange", &lagrange),
        ("greedy", &greedy),
    ];

    let mut engine_results: Vec<Option<(Instance, FlowReport)>> = Vec::new();
    for (name, backend) in runs {
        match run_and_verify(&inst, backend, name, &mut out) {
            Some(pair) => engine_results.push(Some(pair)),
            None => engine_results.push(None),
        }
    }

    // Oracle bound, on instances small enough to enumerate. The gap is
    // *gated* only on oracle-sized lattice points (every net released)
    // whose input carries no overflow. On congested inputs the engines
    // also spend delay reducing overflow (the paper's V_o term), which
    // a delay-only optimum cannot credit; and on subset-release trials
    // the engines optimize a criticality-chosen slice of a larger
    // design under capacities the oracle's tiny search space does not
    // stress the same way — both gaps are reported as notes instead.
    let input_clean =
        inst.grid().total_wire_overflow() == 0 && inst.grid().total_via_overflow() == 0;
    let gap_gated = input_clean && workload.params.oracle_sized;
    out.gap_gated = gap_gated;
    if oracle::enumeration_size(&inst, &released, cfg.max_combos).is_some() {
        if let Some(opt) = oracle::solve(&inst, &released, cfg.max_combos) {
            out.oracle_combos = Some(opt.combos);
            // Per-backend gap bounds: `None` means reported-only (TILA
            // makes no quality promise); the others are gated on the
            // same oracle-sized, overflow-free trials.
            let slots: [(usize, &'static str, Option<f64>); 4] = [
                (0, "cpla", Some(cfg.cpla_gap_bound)),
                (1, "tila", None),
                (2, "lagrange", Some(cfg.lagrange_gap_bound)),
                (3, "greedy", Some(cfg.greedy_gap_bound)),
            ];
            for (slot, name, bound) in slots {
                let Some((after, report)) = &engine_results[slot] else {
                    continue;
                };
                if report.released != released {
                    out.failures.push(Failure {
                        class: FailureClass::PropertyViolation,
                        assigner: name,
                        detail: format!(
                            "released set diverged from flow selection: {:?} vs {:?}",
                            report.released, released
                        ),
                    });
                    continue;
                }
                let g = oracle::gap(report.final_metrics.avg_tcp, opt.best_avg_tcp);
                match name {
                    "cpla" => out.cpla_gap = Some(g),
                    "tila" => out.tila_gap = Some(g),
                    "lagrange" => out.lagrange_gap = Some(g),
                    _ => out.greedy_gap = Some(g),
                }
                if let Some(bound) = bound {
                    if g > bound {
                        if gap_gated {
                            out.failures.push(Failure {
                                class: FailureClass::GapExceeded,
                                assigner: name,
                                detail: format!(
                                    "avg_tcp {} vs oracle optimum {} over {} combos: gap {:.4} > bound {}",
                                    report.final_metrics.avg_tcp,
                                    opt.best_avg_tcp,
                                    opt.combos,
                                    g,
                                    bound
                                ),
                            });
                        } else if !input_clean {
                            out.notes.push(format!(
                                "{name}: gap {g:.4} on a congested input (overflow traded for delay; not gated)"
                            ));
                        } else {
                            out.notes.push(format!(
                                "{name}: gap {g:.4} on a subset-release trial (not gated)"
                            ));
                        }
                    }
                }
                // An engine beating the exhaustive optimum while staying
                // inside the oracle's feasible region refutes the oracle
                // (or the measurement) — flag it on any engine.
                let feasible = after.grid().total_wire_overflow()
                    <= inst.grid().total_wire_overflow()
                    && after.grid().total_via_overflow() <= inst.grid().total_via_overflow();
                if feasible && g < -1e-9 {
                    out.failures.push(Failure {
                        class: FailureClass::PropertyViolation,
                        assigner: name,
                        detail: format!(
                            "feasible result {} beats the exhaustive optimum {}",
                            report.final_metrics.avg_tcp, opt.best_avg_tcp
                        ),
                    });
                }
            }
            metamorphic_oracle_checks(cfg, workload, &inst, &opt, rng, &mut out);
        }
    }

    relabel_timing_check(workload, rng, &mut out);
    parallel_determinism_check(cfg, workload, &inst, &mut out);
    backend_equivalence_check(workload, &inst, &mut out);
    race_differential_check(cfg, workload, &inst, &mut out);

    out
}

/// The cross-assigner differential battery over the racing portfolio:
///
/// 1. every backend runs solo and is scored by the portfolio's shared
///    priced objective;
/// 2. the race must land *exactly* the best solo state (bitwise
///    assignment equality — judging is finish-order independent);
/// 3. rerunning the race with the CPLA lane at 4 threads must be
///    bit-identical to the single-threaded race (the lane itself is
///    thread-count deterministic, so the race must be too).
fn race_differential_check(
    cfg: &TrialConfig,
    workload: &Workload,
    inst: &Instance,
    out: &mut TrialOutcome,
) {
    let baseline = Baseline::measure(inst.grid(), inst.netlist(), inst.assignment());

    // Solo runs, in the portfolio's precedence order.
    let cpla1 = cpla_backend_with(workload.critical_ratio, 1, cfg.solve_backend);
    let tila = tila_backend(workload.critical_ratio);
    let lagrange = lagrange_backend(workload.critical_ratio);
    let greedy = greedy_backend(workload.critical_ratio);
    let solos: [(&'static str, &dyn LayerAssigner); 4] = [
        ("cpla", &cpla1),
        ("tila", &tila),
        ("lagrange", &lagrange),
        ("greedy", &greedy),
    ];
    let mut solo_states: Vec<(Instance, f64)> = Vec::new();
    let mut any_failed = false;
    for (_, backend) in solos {
        let mut solo = inst.clone();
        match solo.run(backend) {
            Ok(_) => {
                let score = priced_score(solo.grid(), solo.netlist(), solo.assignment(), &baseline);
                solo_states.push((solo, score));
            }
            Err(_) => {
                // The main gate battery already reported the solo
                // failure; here only the error-surface agreement with
                // the race is checked.
                any_failed = true;
                break;
            }
        }
    }

    let race1 = race_backend(workload.critical_ratio, 1, cfg.solve_backend);
    let mut raced = inst.clone();
    let race_result = raced.run(&race1);

    if any_failed {
        if race_result.is_ok() {
            out.failures.push(Failure {
                class: FailureClass::PropertyViolation,
                assigner: "race",
                detail: "race succeeded while a solo backend failed on the same input".to_string(),
            });
        }
        return;
    }
    let race_report = match race_result {
        Ok(r) => r,
        Err(e) => {
            out.failures.push(Failure {
                class: FailureClass::PropertyViolation,
                assigner: "race",
                detail: format!("race failed where every solo backend succeeded: {e}"),
            });
            return;
        }
    };

    // Same selection rule as the race: earliest of equal scores wins.
    let mut best = 0;
    for (i, (_, score)) in solo_states.iter().enumerate().skip(1) {
        if score.total_cmp(&solo_states[best].1) == std::cmp::Ordering::Less {
            best = i;
        }
    }
    let (best_inst, _) = &solo_states[best];
    if race_report.assigner != solos[best].0 {
        out.failures.push(Failure {
            class: FailureClass::PropertyViolation,
            assigner: "race",
            detail: format!(
                "race landed {} but the best solo backend is {}",
                race_report.assigner, solos[best].0
            ),
        });
        return;
    }
    if !assignments_identical(&raced, best_inst) || raced.grid() != best_inst.grid() {
        out.failures.push(Failure {
            class: FailureClass::PropertyViolation,
            assigner: "race",
            detail: format!(
                "race result is not bit-identical to the best solo result ({})",
                solos[best].0
            ),
        });
        return;
    }

    // Thread-count independence of the whole race: the CPLA lane at 4
    // threads is bit-identical solo, so the race must be too.
    let race4 = race_backend(workload.critical_ratio, 4, cfg.solve_backend);
    let mut raced4 = inst.clone();
    match raced4.run(&race4) {
        Ok(report4) => {
            if !assignments_identical(&raced, &raced4)
                || report4.final_metrics.avg_tcp.to_bits()
                    != race_report.final_metrics.avg_tcp.to_bits()
                || report4.assigner != race_report.assigner
            {
                out.failures.push(Failure {
                    class: FailureClass::PropertyViolation,
                    assigner: "race",
                    detail: format!(
                        "race with a 4-thread cpla lane diverged from the 1-thread race: {} vs {}",
                        report4.assigner, race_report.assigner
                    ),
                });
            }
        }
        Err(e) => {
            out.failures.push(Failure {
                class: FailureClass::PropertyViolation,
                assigner: "race",
                detail: format!("race with a 4-thread cpla lane failed: {e}"),
            });
        }
    }
}

/// Runs one backend and applies every per-output gate: a from-scratch
/// constraint re-derivation, metrics conformance between the report and
/// the state left behind, and bit-identical rerun determinism.
fn run_and_verify(
    inst: &Instance,
    backend: &dyn LayerAssigner,
    name: &'static str,
    out: &mut TrialOutcome,
) -> Option<(Instance, FlowReport)> {
    let mut first = inst.clone();
    let report = match first.run(backend) {
        Ok(r) => r,
        Err(e) => {
            out.failures.push(Failure {
                class: FailureClass::Flow,
                assigner: name,
                detail: format!("backend failed on valid input: {e}"),
            });
            return None;
        }
    };

    // Gate 1: the left-behind solution satisfies constraints 4b/4c/4d
    // and the incremental timing caches agree with full recomputation.
    if let Err(e) = audit::check_solution(first.grid(), first.netlist(), first.assignment()) {
        out.failures.push(Failure {
            class: FailureClass::InfeasibleOutput,
            assigner: name,
            detail: format!("invariant audit rejected the output: {e}"),
        });
    }

    // Gate 2: the report's final metrics describe the final state.
    let measured = Metrics::measure(
        first.grid(),
        first.netlist(),
        first.assignment(),
        &report.released,
    );
    if !metrics_agree(&measured, &report.final_metrics) {
        out.failures.push(Failure {
            class: FailureClass::InfeasibleOutput,
            assigner: name,
            detail: format!(
                "reported final metrics {:?} do not match the final state {:?}",
                report.final_metrics, measured
            ),
        });
    }

    // CPLA's incumbent prices overflow added beyond the input at
    // `overflow_price` input-average-delays per unit (the Measure-stage
    // mirror of the paper's `α·V_o` relaxation), and seeds itself with
    // the input state, so the engine guarantees the *priced* objective
    // never regresses: final_avg + price·excess ≤ input_avg. Gate
    // exactly that. TILA's subgradient relaxation makes no such
    // guarantee; overflow it adds is reported, not gated.
    let dw = first.grid().total_wire_overflow() as i128 - inst.grid().total_wire_overflow() as i128;
    let dv = first.grid().total_via_overflow() as i128 - inst.grid().total_via_overflow() as i128;
    if name == "cpla" {
        let excess = (dw.max(0) + dv.max(0)) as f64;
        let price = cpla::CplaConfig::default().overflow_price * report.initial_metrics.avg_tcp;
        let scored = report.final_metrics.avg_tcp + price * excess;
        if scored > report.initial_metrics.avg_tcp * (1.0 + 1e-9) {
            out.failures.push(Failure {
                class: FailureClass::InfeasibleOutput,
                assigner: name,
                detail: format!(
                    "priced objective regressed: avg {} + {price}·{excess} overflow \
                     > input avg {} (wire {dw:+}, via {dv:+})",
                    report.final_metrics.avg_tcp, report.initial_metrics.avg_tcp
                ),
            });
        } else if dw > 0 || dv > 0 {
            out.notes.push(format!(
                "{name}: overflow bought with a dominant delay win \
                 (wire {dw:+}, via {dv:+}, avg {} -> {})",
                report.initial_metrics.avg_tcp, report.final_metrics.avg_tcp
            ));
        }
    } else if name == "greedy" {
        // Greedy's contract is stronger than priced: it reverts any net
        // whose move would add overflow, so its output must NEVER carry
        // more overflow than the input. Gate it hard.
        if dw > 0 || dv > 0 {
            out.failures.push(Failure {
                class: FailureClass::InfeasibleOutput,
                assigner: name,
                detail: format!(
                    "greedy added overflow despite its revert guarantee (wire {dw:+}, via {dv:+})"
                ),
            });
        }
    } else if dw > 0 || dv > 0 {
        // TILA and the Lagrangian engine price overflow in their own
        // incumbents but make no per-metric promise conform can gate
        // without re-deriving their internal objectives; report it.
        out.notes.push(format!(
            "{name}: output overflow exceeds input (wire {dw:+}, via {dv:+})"
        ));
    }

    // Gate 3: rerunning on an identical instance is bit-identical.
    let mut second = inst.clone();
    match second.run(backend) {
        Ok(rerun) => {
            if !assignments_identical(&first, &second)
                || rerun.final_metrics.avg_tcp.to_bits() != report.final_metrics.avg_tcp.to_bits()
            {
                out.failures.push(Failure {
                    class: FailureClass::PropertyViolation,
                    assigner: name,
                    detail: "rerun on an identical instance diverged".to_string(),
                });
            }
        }
        Err(e) => {
            out.failures.push(Failure {
                class: FailureClass::PropertyViolation,
                assigner: name,
                detail: format!("rerun failed where the first run succeeded: {e}"),
            });
        }
    }

    Some((first, report))
}

/// CPLA's serial == parallel guarantee: thread count must not change a
/// single bit of the result (checked on the configured solve backend).
fn parallel_determinism_check(
    cfg: &TrialConfig,
    workload: &Workload,
    inst: &Instance,
    out: &mut TrialOutcome,
) {
    let serial = cpla_backend_with(workload.critical_ratio, 1, cfg.solve_backend);
    let parallel = cpla_backend_with(workload.critical_ratio, 4, cfg.solve_backend);
    let mut a = inst.clone();
    let mut b = inst.clone();
    match (a.run(&serial), b.run(&parallel)) {
        (Ok(ra), Ok(rb)) => {
            if !assignments_identical(&a, &b)
                || ra.final_metrics.avg_tcp.to_bits() != rb.final_metrics.avg_tcp.to_bits()
            {
                out.failures.push(Failure {
                    class: FailureClass::PropertyViolation,
                    assigner: "cpla",
                    detail: format!(
                        "threads=1 and threads=4 diverged: avg_tcp {} vs {}",
                        ra.final_metrics.avg_tcp, rb.final_metrics.avg_tcp
                    ),
                });
            }
        }
        (Err(_), Err(_)) => {}
        (ra, rb) => {
            out.failures.push(Failure {
                class: FailureClass::PropertyViolation,
                assigner: "cpla",
                detail: format!(
                    "threads=1 and threads=4 disagreed on success: {:?} vs {:?}",
                    ra.map(|r| r.final_metrics),
                    rb.map(|r| r.final_metrics)
                ),
            });
        }
    }
}

/// The solve-backend bit-identity guarantee: the batched SoA backend
/// and the per-leaf baseline must agree on every bit of the gated
/// report — same assignment, same `avg_tcp` bit pattern, and the same
/// success/failure verdict on every trial.
fn backend_equivalence_check(workload: &Workload, inst: &Instance, out: &mut TrialOutcome) {
    let per_leaf = cpla_backend_with(workload.critical_ratio, 1, SolveBackend::PerLeaf);
    let batched = cpla_backend_with(workload.critical_ratio, 1, SolveBackend::Batched);
    let mut a = inst.clone();
    let mut b = inst.clone();
    match (a.run(&per_leaf), b.run(&batched)) {
        (Ok(ra), Ok(rb)) => {
            if !assignments_identical(&a, &b)
                || ra.final_metrics.avg_tcp.to_bits() != rb.final_metrics.avg_tcp.to_bits()
            {
                out.failures.push(Failure {
                    class: FailureClass::PropertyViolation,
                    assigner: "cpla",
                    detail: format!(
                        "per-leaf and batched solve backends diverged: avg_tcp {} vs {}",
                        ra.final_metrics.avg_tcp, rb.final_metrics.avg_tcp
                    ),
                });
            }
        }
        (Err(_), Err(_)) => {}
        (ra, rb) => {
            out.failures.push(Failure {
                class: FailureClass::PropertyViolation,
                assigner: "cpla",
                detail: format!(
                    "per-leaf and batched solve backends disagreed on success: {:?} vs {:?}",
                    ra.map(|r| r.final_metrics),
                    rb.map(|r| r.final_metrics)
                ),
            });
        }
    }
}

/// Relabel invariance at the timing level, on every trial: per-net
/// critical delays must be bit-identical under a net permutation.
fn relabel_timing_check(workload: &Workload, rng: &mut Rng, out: &mut TrialOutcome) {
    let relabeled = props::relabel(workload, rng);
    let (Ok(a), Ok(b)) = (workload.instance(), relabeled.workload.instance()) else {
        return; // instance failures are reported by the main path
    };
    let ra = timing::analyze(a.grid(), a.netlist(), a.assignment());
    let rb = timing::analyze(b.grid(), b.netlist(), b.assignment());
    for (new_index, &old) in relabeled.perm.iter().enumerate() {
        let da = ra.net(old).critical_delay();
        let db = rb.net(new_index).critical_delay();
        if da.to_bits() != db.to_bits() {
            out.failures.push(Failure {
                class: FailureClass::PropertyViolation,
                assigner: "timing",
                detail: format!("relabeling changed net {old}'s critical delay: {da} vs {db}"),
            });
            return; // one witness is enough
        }
    }
}

/// The oracle-level metamorphic gates: relabel invariance of the
/// optimum, capacity monotonicity, layer-augmentation monotonicity.
fn metamorphic_oracle_checks(
    cfg: &TrialConfig,
    workload: &Workload,
    inst: &Instance,
    base: &oracle::OracleOutcome,
    rng: &mut Rng,
    out: &mut TrialOutcome,
) {
    let tol = |x: f64| x * (1.0 + 1e-12) + 1e-12;

    // Relabel: the optimum is label-independent (compared at 1e-12
    // relative — the average re-associates a float sum, so literal bit
    // equality is not achievable for the aggregate).
    let relabeled = props::relabel(workload, rng);
    if let (Ok(ri), Ok(rr)) = (relabeled.workload.instance(), relabeled.workload.released()) {
        if let Some(ropt) = oracle::solve(&ri, &rr, cfg.max_combos) {
            let delta = (ropt.best_avg_tcp - base.best_avg_tcp).abs();
            if delta > 1e-12 * base.best_avg_tcp.abs().max(1.0) {
                out.failures.push(Failure {
                    class: FailureClass::PropertyViolation,
                    assigner: "oracle",
                    detail: format!(
                        "relabeling moved the exhaustive optimum: {} vs {}",
                        base.best_avg_tcp, ropt.best_avg_tcp
                    ),
                });
            }
        }
    }

    // Loosen one non-overflowed capacity: the optimum cannot worsen.
    if let Some(loose) = props::loosen_capacity(workload, inst, rng, 2) {
        if let (Ok(li), Ok(lr)) = (loose.instance(), loose.released()) {
            if let Some(lopt) = oracle::solve(&li, &lr, cfg.max_combos) {
                if lopt.best_avg_tcp > tol(base.best_avg_tcp) {
                    out.failures.push(Failure {
                        class: FailureClass::PropertyViolation,
                        assigner: "oracle",
                        detail: format!(
                            "loosening a capacity worsened the optimum: {} -> {}",
                            base.best_avg_tcp, lopt.best_avg_tcp
                        ),
                    });
                }
            }
        }
    }

    // Add a faster top layer: the optimum cannot worsen. The larger
    // candidate space may blow the enumeration budget; give it headroom
    // and skip silently when even that is not enough.
    let augmented = props::augment_layer(workload);
    if let (Ok(ai), Ok(ar)) = (augmented.instance(), augmented.released()) {
        if let Some(aopt) = oracle::solve(&ai, &ar, cfg.max_combos.saturating_mul(64)) {
            if aopt.best_avg_tcp > tol(base.best_avg_tcp) {
                out.failures.push(Failure {
                    class: FailureClass::PropertyViolation,
                    assigner: "oracle",
                    detail: format!(
                        "adding a top layer worsened the optimum: {} -> {}",
                        base.best_avg_tcp, aopt.best_avg_tcp
                    ),
                });
            }
        }
    }
}

fn metrics_agree(a: &Metrics, b: &Metrics) -> bool {
    let close = |x: f64, y: f64| (x - y).abs() <= 1e-9 * (1.0 + x.abs().max(y.abs()));
    close(a.avg_tcp, b.avg_tcp)
        && close(a.max_tcp, b.max_tcp)
        && a.via_overflow == b.via_overflow
        && a.via_count == b.via_count
}

fn assignments_identical(a: &Instance, b: &Instance) -> bool {
    let (aa, ab) = (a.assignment(), b.assignment());
    if aa.num_nets() != ab.num_nets() {
        return false;
    }
    (0..aa.num_nets()).all(|i| aa.net_layers(i) == ab.net_layers(i))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_trials_pass_end_to_end() {
        let cfg = TrialConfig::default();
        for trial in 0..6 {
            let out = run_trial(&cfg, trial);
            assert!(
                out.passed(),
                "trial {trial} ({}) failed: {:?}",
                out.params.describe(),
                out.failures
            );
        }
    }

    #[test]
    fn oracle_sized_trials_produce_gap_numbers() {
        let cfg = TrialConfig::default();
        let out = run_trial(&cfg, 0); // trial 0 is oracle-sized
        assert!(out.oracle_combos.is_some(), "{:?}", out.params);
        assert!(out.cpla_gap.is_some());
        assert!(out.tila_gap.is_some());
    }

    #[test]
    fn trials_are_reproducible() {
        let cfg = TrialConfig::default();
        let a = run_trial(&cfg, 3);
        let b = run_trial(&cfg, 3);
        assert_eq!(a, b);
    }
}
