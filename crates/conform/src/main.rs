//! `cpla-conform` — the conformance fuzzer binary.
//!
//! Drives N seeded trials through both layer-assignment backends,
//! classifies every outcome, and on failure shrinks the workload and
//! writes a self-contained JSON reproducer (replayable with
//! `cpla-cli replay <file>` or [`conform::check_workload`]). Exits
//! nonzero when any gated check fails.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use conform::{check_workload, run_trial, shrink, FailureClass, TrialConfig};
use prng::Rng;

struct Args {
    trials: u64,
    cfg: TrialConfig,
    out_dir: PathBuf,
    verbose: bool,
}

const USAGE: &str = "usage: cpla-conform [--trials N] [--seed S] [--max-combos M] \
[--gap-bound G] [--lagrange-gap-bound G] [--greedy-gap-bound G] \
[--backend per-leaf|batched] [--out DIR] [--verbose]";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        trials: 200,
        cfg: TrialConfig::default(),
        out_dir: PathBuf::from("target/conform"),
        verbose: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} needs a value\n{USAGE}"))
        };
        match flag.as_str() {
            "--trials" => args.trials = parse_num(&value("--trials")?)?,
            "--seed" => args.cfg.seed = parse_num(&value("--seed")?)?,
            "--max-combos" => args.cfg.max_combos = parse_num(&value("--max-combos")?)?,
            "--gap-bound" => {
                let v = value("--gap-bound")?;
                args.cfg.cpla_gap_bound = v
                    .parse::<f64>()
                    .map_err(|_| format!("--gap-bound: not a number: {v}"))?;
            }
            "--lagrange-gap-bound" => {
                let v = value("--lagrange-gap-bound")?;
                args.cfg.lagrange_gap_bound = v
                    .parse::<f64>()
                    .map_err(|_| format!("--lagrange-gap-bound: not a number: {v}"))?;
            }
            "--greedy-gap-bound" => {
                let v = value("--greedy-gap-bound")?;
                args.cfg.greedy_gap_bound = v
                    .parse::<f64>()
                    .map_err(|_| format!("--greedy-gap-bound: not a number: {v}"))?;
            }
            "--backend" => {
                let v = value("--backend")?;
                args.cfg.solve_backend = conform::SolveBackend::parse(&v).ok_or_else(|| {
                    format!("--backend expects per-leaf|batched, got {v}\n{USAGE}")
                })?;
            }
            "--out" => args.out_dir = PathBuf::from(value("--out")?),
            "--verbose" | "-v" => args.verbose = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
    }
    Ok(args)
}

fn parse_num(v: &str) -> Result<u64, String> {
    v.parse::<u64>().map_err(|_| format!("not a number: {v}"))
}

fn write_reproducer(
    dir: &Path,
    cfg: &TrialConfig,
    trial: u64,
    failure: &conform::Failure,
    workload: &conform::gen::Workload,
) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let name = format!(
        "seed{}-trial{}-{}-{}.json",
        cfg.seed,
        trial,
        failure.assigner,
        failure.class.label()
    );
    let path = dir.join(name);
    let mut doc = conform::io::workload_to_json(workload);
    if let conform::json::Value::Obj(pairs) = &mut doc {
        pairs.insert(
            0,
            (
                "failure".to_string(),
                conform::json::obj(vec![
                    ("seed", conform::json::int(cfg.seed)),
                    ("trial", conform::json::int(trial)),
                    (
                        "class",
                        conform::json::Value::Str(failure.class.label().to_string()),
                    ),
                    (
                        "assigner",
                        conform::json::Value::Str(failure.assigner.to_string()),
                    ),
                    ("detail", conform::json::Value::Str(failure.detail.clone())),
                ]),
            ),
        );
    }
    std::fs::write(&path, doc.to_pretty())?;
    Ok(path)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("cpla-conform: {e}");
            return ExitCode::from(2);
        }
    };

    let mut failed_trials = 0u64;
    let mut class_counts = [0u64; 4];
    let mut oracle_trials = 0u64;
    let mut worst_cpla_gap: Option<(f64, u64)> = None;
    let mut worst_gated_gap: Option<(f64, u64)> = None;
    let mut worst_tila_gap: Option<(f64, u64)> = None;
    let mut worst_lagrange_gap: Option<(f64, u64)> = None;
    let mut worst_gated_lagrange: Option<(f64, u64)> = None;
    let mut worst_greedy_gap: Option<(f64, u64)> = None;
    let mut worst_gated_greedy: Option<(f64, u64)> = None;
    let mut notes = 0usize;

    for trial in 0..args.trials {
        let out = run_trial(&args.cfg, trial);
        if let Some(c) = out.oracle_combos {
            oracle_trials += 1;
            if args.verbose {
                println!(
                    "conform: trial {trial} [{}] oracle combos={} cpla_gap={:?} tila_gap={:?}",
                    out.params.describe(),
                    c,
                    out.cpla_gap,
                    out.tila_gap
                );
            }
        } else if args.verbose {
            println!("conform: trial {trial} [{}]", out.params.describe());
        }
        let gate = |g: Option<f64>| if out.gap_gated { g } else { None };
        for (g, worst) in [
            (out.cpla_gap, &mut worst_cpla_gap),
            (gate(out.cpla_gap), &mut worst_gated_gap),
            (out.tila_gap, &mut worst_tila_gap),
            (out.lagrange_gap, &mut worst_lagrange_gap),
            (gate(out.lagrange_gap), &mut worst_gated_lagrange),
            (out.greedy_gap, &mut worst_greedy_gap),
            (gate(out.greedy_gap), &mut worst_gated_greedy),
        ] {
            if let Some(g) = g {
                if worst.map(|(w, _)| g > w).unwrap_or(true) {
                    *worst = Some((g, trial));
                }
            }
        }
        for note in &out.notes {
            notes += 1;
            if args.verbose {
                println!("conform: trial {trial} note: {note}");
            }
        }
        if out.passed() {
            continue;
        }

        failed_trials += 1;
        for failure in &out.failures {
            let idx = match failure.class {
                FailureClass::InfeasibleOutput => 0,
                FailureClass::GapExceeded => 1,
                FailureClass::PropertyViolation => 2,
                FailureClass::Flow => 3,
            };
            class_counts[idx] += 1;
            eprintln!(
                "conform: FAIL seed={} trial={} [{}] assigner={} class={}: {}",
                args.cfg.seed,
                trial,
                out.params.describe(),
                failure.assigner,
                failure.class.label(),
                failure.detail
            );
        }

        // Shrink and emit one reproducer per distinct (class, assigner)
        // failure signature — a trial that trips, say, a CPLA gap bound
        // AND a TILA property violation yields two independent repro
        // files, so neither regression hides behind the other. The
        // filename already encodes the signature, so a trial's
        // reproducers never collide.
        let mut signatures: Vec<(FailureClass, &'static str)> = Vec::new();
        for f in &out.failures {
            let sig = (f.class, f.assigner);
            if !signatures.contains(&sig) {
                signatures.push(sig);
            }
        }
        for (class, assigner) in signatures {
            let witness = out
                .failures
                .iter()
                .find(|f| f.class == class && f.assigner == assigner)
                .cloned()
                .expect("signature came from this failure list");
            let cfg = args.cfg;
            let mut predicate = |w: &conform::gen::Workload| {
                // The mutation stream must be as deterministic as the
                // trial itself; derive it from the workload's own
                // provenance.
                let mut rng = Rng::seed_from_u64(cfg.seed).fork(w.params.trial);
                let _ = conform::gen::GenParams::lattice(w.params.trial, &mut rng);
                check_workload(&cfg, w, &mut rng)
                    .failures
                    .iter()
                    .any(|f| f.class == class && f.assigner == assigner)
            };
            let minimized = if predicate(&out.workload) {
                shrink::shrink(&out.workload, &mut predicate)
            } else {
                out.workload.clone()
            };
            match write_reproducer(&args.out_dir, &args.cfg, trial, &witness, &minimized) {
                Ok(path) => {
                    eprintln!(
                        "conform: reproducer written to {} ({} nets); replay with `cpla-cli replay {}`",
                        path.display(),
                        minimized.netlist.len(),
                        path.display()
                    );
                    eprintln!(
                        "conform: pin it as a regression test:\n\
                             #[test]\n\
                             fn replays_seed{}_trial{}() {{\n\
                                 let w = conform::io::workload_from_str(include_str!(\"{}\")).unwrap();\n\
                                 let mut rng = prng::Rng::seed_from_u64({}).fork({});\n\
                                 let _ = conform::gen::GenParams::lattice({}, &mut rng);\n\
                                 let out = conform::check_workload(&conform::TrialConfig::default(), &w, &mut rng);\n\
                                 assert!(out.passed(), \"{{:?}}\", out.failures);\n\
                             }}",
                        args.cfg.seed,
                        trial,
                        path.file_name().and_then(|n| n.to_str()).unwrap_or("repro.json"),
                        args.cfg.seed,
                        trial,
                        trial
                    );
                }
                Err(e) => eprintln!("conform: could not write reproducer: {e}"),
            }
        }
    }

    println!(
        "conform: {} trials, {} oracle-bounded, {} failed ({} infeasible-output, {} gap-exceeded, {} property-violation, {} flow-error), {} notes",
        args.trials,
        oracle_trials,
        failed_trials,
        class_counts[0],
        class_counts[1],
        class_counts[2],
        class_counts[3],
        notes
    );
    if let Some((g, t)) = worst_cpla_gap {
        println!("conform: worst cpla gap {g:.4} (trial {t})");
    }
    if let Some((g, t)) = worst_gated_gap {
        println!(
            "conform: worst gated cpla gap {g:.4} (trial {t}, bound {})",
            args.cfg.cpla_gap_bound
        );
    }
    if let Some((g, t)) = worst_tila_gap {
        println!("conform: worst tila gap {g:.4} (trial {t}, reported only)");
    }
    if let Some((g, t)) = worst_lagrange_gap {
        println!("conform: worst lagrange gap {g:.4} (trial {t})");
    }
    if let Some((g, t)) = worst_gated_lagrange {
        println!(
            "conform: worst gated lagrange gap {g:.4} (trial {t}, bound {})",
            args.cfg.lagrange_gap_bound
        );
    }
    if let Some((g, t)) = worst_greedy_gap {
        println!("conform: worst greedy gap {g:.4} (trial {t})");
    }
    if let Some((g, t)) = worst_gated_greedy {
        println!(
            "conform: worst gated greedy gap {g:.4} (trial {t}, bound {})",
            args.cfg.greedy_gap_bound
        );
    }

    if failed_trials > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
