//! Metamorphic workload mutations.
//!
//! Each function derives a second workload whose *relationship* to the
//! original is known even though neither optimum is: permuting net
//! labels changes nothing, loosening a non-binding capacity or adding a
//! better top layer can only help. The driver compares oracle optima
//! (and, note-only, engine results) across each pair; a violated
//! relationship is a pipeline bug by construction, with no reference
//! implementation needed.

use flow::Instance;
use net::Netlist;
use prng::Rng;

use crate::gen::{CapOverride, LayerSpec, Workload};

/// A relabeled workload plus the permutation that produced it:
/// `perm[new_index] = old_index`.
pub struct Relabeled {
    /// The permuted workload.
    pub workload: Workload,
    /// Maps each new net index back to the original index.
    pub perm: Vec<usize>,
}

/// Permutes net order and renames every net.
///
/// Timing is a per-net property and capacity usage a per-edge sum, so
/// any pipeline output that depends on the labels — rather than the
/// geometry and electrical parameters they carry — violates
/// relabel-invariance.
pub fn relabel(w: &Workload, rng: &mut Rng) -> Relabeled {
    let mut perm: Vec<usize> = (0..w.netlist.len()).collect();
    rng.shuffle(&mut perm);
    let mut netlist = Netlist::new();
    for (new_index, &old) in perm.iter().enumerate() {
        let mut net = w.netlist.net(old).clone();
        net = net::Net::new(
            format!("r{new_index}"),
            net.pins().to_vec(),
            net.tree().clone(),
        );
        net.driver_resistance = w.netlist.net(old).driver_resistance;
        netlist.push(net);
    }
    Relabeled {
        workload: Workload {
            params: w.params.clone(),
            grid_spec: w.grid_spec.clone(),
            netlist,
            critical_ratio: w.critical_ratio,
        },
        perm,
    }
}

/// Loosens one routing-edge capacity by `extra`, choosing an edge whose
/// current usage does not exceed its capacity.
///
/// The non-overflowed restriction keeps the mutation *monotone under
/// the oracle's relative feasibility rule*: the initial assignment's
/// total overflow is unchanged, so the loosened instance's feasible set
/// is a superset of the original's and its optimum can never be worse.
/// (Loosening an edge that was overflowed would lower the feasibility
/// baseline instead, which can exclude previously feasible solutions —
/// that is a property of the comparison rule, not a pipeline bug.)
///
/// Returns `None` when every edge of every layer is overflowed (not
/// observed in practice) or the grid has no layers.
pub fn loosen_capacity(
    w: &Workload,
    inst: &Instance,
    rng: &mut Rng,
    extra: u32,
) -> Option<Workload> {
    let grid = inst.grid();
    if grid.num_layers() == 0 {
        return None;
    }
    // Rejection-sample a non-overflowed edge; fall back to a scan so the
    // function is total.
    let mut candidates = Vec::new();
    for layer in 0..grid.num_layers() {
        for edge in grid.edges_in_direction(grid.layer(layer).direction) {
            if grid.edge_usage(layer, edge) <= grid.edge_capacity(layer, edge) {
                candidates.push((layer, edge));
            }
        }
    }
    if candidates.is_empty() {
        return None;
    }
    let (layer, edge) = candidates[rng.range_usize(0, candidates.len() - 1)];
    let capacity = grid.edge_capacity(layer, edge).saturating_add(extra);
    let mut grid_spec = w.grid_spec.clone();
    // Overrides apply in order, so appending wins over any earlier
    // override of the same edge.
    grid_spec.capacity_overrides.push(CapOverride {
        layer,
        x: edge.cell.x,
        y: edge.cell.y,
        capacity,
    });
    Some(Workload {
        params: w.params.clone(),
        grid_spec,
        netlist: w.netlist.clone(),
        critical_ratio: w.critical_ratio,
    })
}

/// Appends a top routing layer that continues the generator's profile:
/// alternating direction, lower resistance than every existing layer of
/// its direction, generous capacity.
///
/// Existing layers' wire capacities are untouched and a layer's via
/// capacity depends only on its *own* two incident edge capacities
/// (Eqn. 1), so every previously feasible assignment stays feasible with
/// bit-identical timing — the augmented optimum can never be worse.
pub fn augment_layer(w: &Workload) -> Workload {
    let mut grid_spec = w.grid_spec.clone();
    let l = grid_spec.layers.len();
    // invariant: generated grids always carry >= 2 layers, so `last`
    // and the direction flip below are well-defined.
    let last = grid_spec.layers.last().expect("grids have layers");
    let width = 1.0 + 0.5 * (l / 2) as f64;
    let capacity = w.params.capacity.max(4);
    grid_spec.layers.push(LayerSpec {
        name: format!("M{}", l + 1),
        dir: last.dir.flipped(),
        resistance: 8.0 / f64::powi(2.0, (l / 2) as i32),
        capacitance: 1.0 + 0.15 * l as f64,
        wire_width: width,
        wire_spacing: width,
        capacity,
    });
    if let Some(table) = &mut grid_spec.via_resistances {
        // invariant: an explicit table always has layers-1 >= 1 entries.
        let r = *table.last().expect("non-empty via table");
        table.push(r);
    }
    Workload {
        params: w.params.clone(),
        grid_spec,
        netlist: w.netlist.clone(),
        critical_ratio: w.critical_ratio,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, GenParams};
    use crate::oracle;

    fn oracle_workload(trial: u64) -> Workload {
        // Even trials are oracle-sized.
        let mut rng = Rng::seed_from_u64(21).fork(trial);
        let p = GenParams::lattice(trial, &mut rng);
        generate(&p, &mut rng)
    }

    #[test]
    fn relabel_preserves_per_net_delays_bitwise() {
        let w = oracle_workload(0);
        let mut rng = Rng::seed_from_u64(99);
        let r = relabel(&w, &mut rng);
        let a = w.instance().unwrap();
        let b = r.workload.instance().unwrap();
        let ra = timing::analyze(a.grid(), a.netlist(), a.assignment());
        let rb = timing::analyze(b.grid(), b.netlist(), b.assignment());
        for (new_index, &old) in r.perm.iter().enumerate() {
            assert_eq!(
                rb.net(new_index).critical_delay().to_bits(),
                ra.net(old).critical_delay().to_bits(),
                "net {old} delay changed under relabeling"
            );
        }
    }

    #[test]
    fn loosening_never_worsens_the_oracle() {
        for trial in [0u64, 2, 4, 6] {
            let w = oracle_workload(trial);
            let inst = w.instance().unwrap();
            let released = w.released().unwrap();
            let Some(base) = oracle::solve(&inst, &released, 1 << 16) else {
                continue;
            };
            let mut rng = Rng::seed_from_u64(5).fork(trial);
            let Some(loose) = loosen_capacity(&w, &inst, &mut rng, 2) else {
                continue;
            };
            let li = loose.instance().unwrap();
            let lr = loose.released().unwrap();
            let Some(after) = oracle::solve(&li, &lr, 1 << 16) else {
                continue;
            };
            assert!(
                after.best_avg_tcp <= base.best_avg_tcp * (1.0 + 1e-12) + 1e-12,
                "trial {trial}: loosening worsened {} -> {}",
                base.best_avg_tcp,
                after.best_avg_tcp
            );
        }
    }

    #[test]
    fn layer_augmentation_never_worsens_the_oracle() {
        for trial in [0u64, 2, 4] {
            let w = oracle_workload(trial);
            let inst = w.instance().unwrap();
            let released = w.released().unwrap();
            let Some(base) = oracle::solve(&inst, &released, 1 << 16) else {
                continue;
            };
            let aug = augment_layer(&w);
            let ai = aug.instance().unwrap();
            let ar = aug.released().unwrap();
            let Some(after) = oracle::solve(&ai, &ar, 1 << 20) else {
                continue;
            };
            assert!(
                after.best_avg_tcp <= base.best_avg_tcp * (1.0 + 1e-12) + 1e-12,
                "trial {trial}: augmentation worsened {} -> {}",
                base.best_avg_tcp,
                after.best_avg_tcp
            );
        }
    }
}
