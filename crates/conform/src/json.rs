//! A minimal JSON value model, writer and parser.
//!
//! The workspace builds offline with no external dependencies, so the
//! conform crate carries its own JSON support: just enough to write and
//! read back the self-contained instance reproducers the shrinker
//! emits. Numbers are `f64` (written in Rust's shortest round-trip
//! form), objects preserve insertion order, and the parser accepts
//! exactly the JSON this module writes plus ordinary whitespace.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, PartialEq, Debug)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always carried as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a finite number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) if n.is_finite() => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer (rejects fractional numbers).
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_num()?;
        // An f64 holds integers exactly up to 2^53; the instances this
        // crate writes never exceed that.
        if (0.0..=9_007_199_254_740_992.0).contains(&n) && n.fract() == 0.0 {
            Some(n as u64)
        } else {
            None
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes the value with two-space indentation.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => write_num(out, *n),
            Value::Str(s) => write_str(out, s),
            Value::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                // Arrays of scalars stay on one line; nested structures
                // get one element per line for readable diffs.
                let scalar = items
                    .iter()
                    .all(|v| !matches!(v, Value::Arr(_) | Value::Obj(_)));
                if scalar {
                    out.push('[');
                    for (i, v) in items.iter().enumerate() {
                        if i > 0 {
                            out.push_str(", ");
                        }
                        v.write(out, indent);
                    }
                    out.push(']');
                } else {
                    out.push_str("[\n");
                    for (i, v) in items.iter().enumerate() {
                        pad(out, indent + 1);
                        v.write(out, indent + 1);
                        if i + 1 < items.len() {
                            out.push(',');
                        }
                        out.push('\n');
                    }
                    pad(out, indent);
                    out.push(']');
                }
            }
            Value::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    pad(out, indent + 1);
                    write_str(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                    if i + 1 < pairs.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                pad(out, indent);
                out.push('}');
            }
        }
    }
}

fn pad(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_num(out: &mut String, n: f64) {
    if n.is_finite() {
        // Rust's Display for f64 prints the shortest string that parses
        // back to the same bits, so round trips are exact.
        let _ = write!(out, "{n}");
    } else {
        out.push_str("null");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document.
///
/// # Errors
///
/// Returns a message with the byte offset of the first syntax error.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => parse_lit(bytes, pos, "null", Value::Null),
        Some(b't') => parse_lit(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Value::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Value::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Obj(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected `:` at byte {pos}"));
                }
                *pos += 1;
                let value = parse_value(bytes, pos)?;
                pairs.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Obj(pairs));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
                }
            }
        }
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        Some(c) => Err(format!("unexpected byte `{}` at {pos}", *c as char)),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Value) -> Result<Value, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Value::Num)
        .map_err(|_| format!("bad number `{text}` at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {pos}"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape at byte {pos}"))?;
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| format!("bad \\u escape at byte {pos}"))?,
                        );
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte sequences pass
                // through unchanged).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().ok_or("unterminated string")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

/// Shorthand for building an object value.
pub fn obj(pairs: Vec<(&str, Value)>) -> Value {
    Value::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

/// Shorthand for a number value.
pub fn num(n: f64) -> Value {
    Value::Num(n)
}

/// Shorthand for an integer value.
pub fn int(n: u64) -> Value {
    Value::Num(n as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_structure() {
        let v = obj(vec![
            ("name", Value::Str("tricky \"quote\"\n".into())),
            ("n", num(0.1 + 0.2)),
            ("flag", Value::Bool(true)),
            ("nothing", Value::Null),
            (
                "arr",
                Value::Arr(vec![int(1), int(2), Value::Arr(vec![num(-3.5e-9)])]),
            ),
        ]);
        let text = v.to_pretty();
        let back = parse(&text).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn numbers_round_trip_exactly() {
        for n in [0.1, 1.0 / 3.0, f64::MIN_POSITIVE, 9007199254740991.0] {
            let text = Value::Num(n).to_pretty();
            match parse(&text).unwrap() {
                Value::Num(back) => assert_eq!(n.to_bits(), back.to_bits(), "{n}"),
                other => panic!("expected number, got {other:?}"),
            }
        }
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse("[1, 2,]").is_err());
        assert!(parse("\"open").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("{\"a\" 1}").is_err());
    }

    #[test]
    fn accessors_navigate() {
        let v = parse("{\"a\": [1, \"x\"], \"b\": 2}").unwrap();
        assert_eq!(v.get("b").and_then(Value::as_u64), Some(2));
        let arr = v.get("a").and_then(Value::as_arr).unwrap();
        assert_eq!(arr[1].as_str(), Some("x"));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn audit_findings_json_parses() {
        // `cpla-audit --json` output must stay machine-readable: lex a
        // planted float-comparison violation, render it, and walk the
        // document with this parser.
        let src = "pub fn close(a: f64) -> bool {\n    a == 0.5\n}\n";
        let unit = audit::FileUnit {
            path: "crates/solver/src/planted.rs".into(),
            crate_name: "solver".into(),
            class: audit::FileClass::Lib,
            lexed: audit::lexer::lex(src),
        };
        let mut findings = Vec::new();
        audit::rules::check_file(&unit, &mut findings);
        assert!(!findings.is_empty(), "planted A2 violation not found");

        let doc = parse(&audit::findings_json(&findings)).expect("audit JSON must parse");
        let count = doc.get("count").and_then(Value::as_u64).unwrap();
        let arr = doc.get("findings").and_then(Value::as_arr).unwrap();
        assert_eq!(count as usize, arr.len());
        let a2 = arr
            .iter()
            .find(|f| f.get("rule").and_then(Value::as_str) == Some("A2"))
            .expect("an A2 entry");
        assert_eq!(
            a2.get("path").and_then(Value::as_str),
            Some("crates/solver/src/planted.rs")
        );
        assert_eq!(a2.get("line").and_then(Value::as_u64), Some(2));
        for f in arr {
            for key in ["path", "rule", "name", "token", "message"] {
                assert!(
                    f.get(key).and_then(Value::as_str).is_some(),
                    "missing {key}"
                );
            }
            assert!(f.get("line").and_then(Value::as_u64).is_some());
        }
    }
}
