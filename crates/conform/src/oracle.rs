//! The exact brute-force layer-assignment oracle.
//!
//! For instances whose released nets carry few enough segments,
//! [`solve`] enumerates *every* direction-legal layer combination,
//! keeps the combinations that do not worsen the input's wire/via
//! overflow, and returns the true optimal `Avg(Tcp)` over the released
//! set. The engines' results are then bounded against this optimum
//! (their *optimality gap*), which is the strongest end-to-end check
//! the pipeline has: a heuristic can be wrong in many quiet ways, but
//! it cannot beat or badly trail an exhaustive search without one of
//! the two being buggy.
//!
//! Feasibility is *relative*: a combination is feasible when its total
//! wire overflow and via overflow do not exceed the input assignment's.
//! The input itself is always feasible under this definition, so the
//! oracle never comes back empty, and engines — which are allowed to
//! keep pre-existing congestion — are compared against a bound they
//! could in principle reach.

use flow::{Instance, Metrics};

/// Result of one exhaustive enumeration.
#[derive(Clone, PartialEq, Debug)]
pub struct OracleOutcome {
    /// The optimal `Avg(Tcp)` over the released nets.
    pub best_avg_tcp: f64,
    /// The optimal layer vectors, parallel to the released order.
    pub best_layers: Vec<Vec<usize>>,
    /// Combinations enumerated.
    pub combos: u64,
    /// Combinations that were feasible.
    pub feasible: u64,
}

/// Number of layer combinations an exhaustive enumeration would visit,
/// or `None` when the product exceeds `cap` (the instance is not
/// oracle-sized).
pub fn enumeration_size(inst: &Instance, released: &[usize], cap: u64) -> Option<u64> {
    let mut combos = 1u64;
    for &ni in released {
        let net = inst.netlist().net(ni);
        for seg in net.tree().segments() {
            let options = inst.grid().layers_in_direction(seg.dir).count() as u64;
            combos = combos.checked_mul(options.max(1))?;
            if combos > cap {
                return None;
            }
        }
    }
    Some(combos)
}

/// Exhaustively solves the layer assignment of the released nets.
///
/// Returns `None` when the enumeration would exceed `max_combos`
/// combinations. Ties on the optimal delay keep the first combination
/// in enumeration order, so the result is deterministic.
///
/// # Panics
///
/// Panics if an index in `released` is out of range.
pub fn solve(inst: &Instance, released: &[usize], max_combos: u64) -> Option<OracleOutcome> {
    let combos = enumeration_size(inst, released, max_combos)?;

    // Baseline overflow of the input assignment: the feasibility bound.
    let wire_bound = inst.grid().total_wire_overflow();
    let via_bound = inst.grid().total_via_overflow();

    let (mut grid, netlist, mut assignment) = inst.clone().into_parts();

    // Candidate layers per released segment, flattened in released-net
    // order; `slots[k] = (net, seg, candidates)`.
    let mut slots: Vec<(usize, usize, Vec<usize>)> = Vec::new();
    for &ni in released {
        let net = netlist.net(ni);
        for (si, seg) in net.tree().segments().iter().enumerate() {
            let candidates: Vec<usize> = grid.layers_in_direction(seg.dir).collect();
            if candidates.is_empty() {
                // A grid with both directions present always offers at
                // least one layer per segment; bail out rather than
                // enumerate an empty product.
                return None;
            }
            slots.push((ni, si, candidates));
        }
    }

    // Lift the released nets off the grid; each combination is applied
    // and removed around its evaluation so the tallies stay exact.
    for &ni in released {
        net::remove_net_from_grid(&mut grid, netlist.net(ni), assignment.net_layers(ni));
    }

    let mut odometer = vec![0usize; slots.len()];
    let mut best: Option<(f64, Vec<Vec<usize>>)> = None;
    let mut feasible = 0u64;
    let mut enumerated = 0u64;
    loop {
        enumerated += 1;
        // Apply the combination described by the odometer.
        for (k, &(ni, si, ref candidates)) in slots.iter().enumerate() {
            // invariant: odometer digits are always < candidates.len()
            // (they wrap in the increment step below).
            assignment.set_layer(ni, si, candidates[odometer[k]]);
        }
        for &ni in released {
            net::restore_net_to_grid(&mut grid, netlist.net(ni), assignment.net_layers(ni));
        }
        if grid.total_wire_overflow() <= wire_bound && grid.total_via_overflow() <= via_bound {
            feasible += 1;
            let avg = Metrics::measure(&grid, &netlist, &assignment, released).avg_tcp;
            let better = match &best {
                None => true,
                Some((b, _)) => avg.total_cmp(b).is_lt(),
            };
            if better {
                let layers = released
                    .iter()
                    .map(|&ni| assignment.net_layers(ni).to_vec())
                    .collect();
                best = Some((avg, layers));
            }
        }
        for &ni in released {
            net::remove_net_from_grid(&mut grid, netlist.net(ni), assignment.net_layers(ni));
        }

        // Increment the odometer (last slot fastest).
        let mut k = slots.len();
        loop {
            if k == 0 {
                // Every digit wrapped: enumeration complete.
                debug_assert_eq!(enumerated, combos);
                // The input assignment itself is one of the enumerated
                // combinations, and its overflow equals the bound.
                // invariant: at least one combo is feasible.
                let (best_avg_tcp, best_layers) =
                    best.expect("input assignment is always feasible");
                return Some(OracleOutcome {
                    best_avg_tcp,
                    best_layers,
                    combos,
                    feasible,
                });
            }
            k -= 1;
            odometer[k] += 1;
            if odometer[k] < slots[k].2.len() {
                break;
            }
            odometer[k] = 0;
        }
    }
}

/// Relative optimality gap of an engine result against the oracle
/// optimum (positive = engine is worse).
pub fn gap(engine_avg_tcp: f64, oracle_best: f64) -> f64 {
    (engine_avg_tcp - oracle_best) / oracle_best.max(1e-12)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{GridSpec, Workload};
    use grid::Cell;
    use net::{Net, Netlist, Pin, RouteTreeBuilder};
    use timing::NetTiming;

    /// A 4-layer grid (H layers 0/2, V layers 1/3) and one L-shaped
    /// 2-segment net — small enough to enumerate by hand.
    fn two_segment_workload() -> Workload {
        let grid_spec = GridSpec {
            width: 8,
            height: 8,
            tile: (10.0, 10.0),
            via_geometry: (1.0, 1.0),
            layers: GridSpec::standard_layers(4, 8),
            via_resistances: None,
            capacity_overrides: Vec::new(),
        };
        let src = Cell::new(1, 1);
        let bend = Cell::new(4, 1);
        let dst = Cell::new(4, 5);
        let mut b = RouteTreeBuilder::new(src);
        let mid = b.add_segment(b.root(), bend).unwrap();
        let end = b.add_segment(mid, dst).unwrap();
        b.attach_pin(b.root(), 0).unwrap();
        b.attach_pin(end, 1).unwrap();
        let net = Net::new(
            "n0",
            vec![Pin::source(src, 10.0), Pin::sink(dst, 2.0)],
            b.build().unwrap(),
        );
        let mut netlist = Netlist::new();
        netlist.push(net);
        let mut rng = prng::Rng::seed_from_u64(0);
        let params = crate::gen::GenParams::lattice(0, &mut rng);
        Workload {
            params,
            grid_spec,
            netlist,
            critical_ratio: 1.0,
        }
    }

    /// Hand-computed Elmore delay of the two-segment net for one layer
    /// pair, straight from Eqns. 2–3 of the paper: per-segment wire
    /// delay `R·(C/2 + C_d)`, via-stack delay `R_v · min(C_entry, C_d)`
    /// and the sink pin drop `R_v · C_pin`.
    fn hand_delay(grid: &grid::Grid, l0: usize, l1: usize) -> f64 {
        let (len0, len1, pin_cap) = (3.0, 4.0, 2.0);
        let (r0, c0) = (
            grid.layer(l0).unit_resistance * len0,
            grid.layer(l0).unit_capacitance * len0,
        );
        let (r1, c1) = (
            grid.layer(l1).unit_resistance * len1,
            grid.layer(l1).unit_capacitance * len1,
        );
        // Bottom-up downstream caps.
        let cd1 = pin_cap;
        let cd0 = c1 + cd1;
        let total = c0 + cd0;
        // Source via: pin layer 0 up to l0, driving min(total, cd0)=cd0.
        let d_src_via = grid.via_stack_resistance(0, l0) * total.min(cd0);
        let d_seg0 = r0 * (c0 / 2.0 + cd0);
        // Bend via between l0 and l1, driving min(cd0, cd1)=cd1.
        let (lo, hi) = (l0.min(l1), l0.max(l1));
        let d_bend_via = grid.via_stack_resistance(lo, hi) * cd0.min(cd1);
        let d_seg1 = r1 * (c1 / 2.0 + cd1);
        // Sink pin drop from l1 to layer 0.
        let d_drop = grid.via_stack_resistance(0, l1) * pin_cap;
        d_src_via + d_seg0 + d_bend_via + d_seg1 + d_drop
    }

    #[test]
    fn oracle_matches_hand_enumeration_on_two_by_two() {
        let w = two_segment_workload();
        let inst = w.instance().unwrap();
        let grid = w.grid_spec.build().unwrap();
        let outcome = solve(&inst, &[0], 1 << 20).unwrap();
        // Segment 0 is horizontal (layers 0/2), segment 1 vertical
        // (layers 1/3): exactly four combinations, all feasible (the
        // grid is uncongested).
        assert_eq!(outcome.combos, 4);
        assert_eq!(outcome.feasible, 4);
        let mut hand_best = f64::INFINITY;
        let mut hand_layers = Vec::new();
        for l0 in [0usize, 2] {
            for l1 in [1usize, 3] {
                let d = hand_delay(&grid, l0, l1);
                // Cross-check the hand formula against the model itself
                // before trusting it as the reference.
                let model =
                    NetTiming::compute(&grid, inst.netlist().net(0), &[l0, l1]).critical_delay();
                assert!(
                    (d - model).abs() < 1e-9,
                    "hand Elmore diverges at ({l0},{l1}): {d} vs {model}"
                );
                if d < hand_best {
                    hand_best = d;
                    hand_layers = vec![l0, l1];
                }
            }
        }
        assert!(
            (outcome.best_avg_tcp - hand_best).abs() < 1e-9,
            "oracle {} vs hand {}",
            outcome.best_avg_tcp,
            hand_best
        );
        assert_eq!(outcome.best_layers, vec![hand_layers]);
    }

    #[test]
    fn oracle_respects_the_combo_cap() {
        let w = two_segment_workload();
        let inst = w.instance().unwrap();
        assert_eq!(enumeration_size(&inst, &[0], 1000), Some(4));
        assert!(solve(&inst, &[0], 3).is_none());
        assert!(enumeration_size(&inst, &[0], 3).is_none());
    }

    #[test]
    fn oracle_never_beats_itself_on_rerun() {
        let w = two_segment_workload();
        let inst = w.instance().unwrap();
        let a = solve(&inst, &[0], 1 << 20).unwrap();
        let b = solve(&inst, &[0], 1 << 20).unwrap();
        assert_eq!(a, b, "oracle must be deterministic");
    }

    #[test]
    fn gap_is_relative_to_the_oracle() {
        assert!((gap(110.0, 100.0) - 0.1).abs() < 1e-12);
        assert!(gap(90.0, 100.0) < 0.0);
    }
}
