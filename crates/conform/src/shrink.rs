//! Greedy failure minimization.
//!
//! Given a failing workload and a predicate that re-runs the failing
//! check, [`shrink`] deletes whole nets, then trims leaf branches off
//! multi-sink trees, keeping every deletion that preserves the failure.
//! The result is the workload a human actually debugs: typically one or
//! two nets on the original grid instead of a dozen.

use net::{Net, Netlist, Pin, RouteTreeBuilder};

use crate::gen::Workload;

/// Minimizes `w` against `still_fails`, which must return `true` for
/// the input workload (and for any workload reproducing the failure).
///
/// The predicate sees structurally valid workloads only: nets are
/// removed whole and branches trimmed leaf-first, so every candidate
/// still builds an [`flow::Instance`]. Deterministic — the scan order
/// is fixed, so the same failure always shrinks to the same reproducer.
pub fn shrink(w: &Workload, still_fails: &mut dyn FnMut(&Workload) -> bool) -> Workload {
    let mut best = w.clone();
    // Releasing everything usually keeps the failure and decouples the
    // reproducer from criticality selection.
    if (best.critical_ratio - 1.0).abs() > f64::EPSILON {
        let mut all = best.clone();
        all.critical_ratio = 1.0;
        if still_fails(&all) {
            best = all;
        }
    }
    loop {
        let mut progressed = false;
        // Pass 1: drop whole nets, last first (stable indices).
        let mut i = best.netlist.len();
        while i > 0 {
            i -= 1;
            if best.netlist.len() <= 1 {
                break;
            }
            let candidate = without_net(&best, i);
            if still_fails(&candidate) {
                best = candidate;
                progressed = true;
            }
        }
        // Pass 2: trim one leaf branch per net per round.
        for i in 0..best.netlist.len() {
            if let Some(trimmed) = trim_leaf(best.netlist.net(i)) {
                let mut candidate = best.clone();
                let mut netlist = Netlist::new();
                for (j, net) in candidate.netlist.nets().iter().enumerate() {
                    netlist.push(if j == i { trimmed.clone() } else { net.clone() });
                }
                candidate.netlist = netlist;
                if still_fails(&candidate) {
                    best = candidate;
                    progressed = true;
                }
            }
        }
        if !progressed {
            return best;
        }
    }
}

fn without_net(w: &Workload, index: usize) -> Workload {
    let mut netlist = Netlist::new();
    for (i, net) in w.netlist.nets().iter().enumerate() {
        if i != index {
            netlist.push(net.clone());
        }
    }
    let mut out = w.clone();
    out.netlist = netlist;
    out.params.num_nets = out.netlist.len();
    out
}

/// Removes one leaf segment (and its sink pin, if any) from a
/// multi-segment net; `None` when the net cannot shrink further while
/// keeping a sink.
fn trim_leaf(net: &Net) -> Option<Net> {
    let tree = net.tree();
    if tree.num_segments() < 2 || net.sinks().len() < 2 {
        return None;
    }
    // Scan leaves from the back so trunk segments survive longest.
    let victim = (0..tree.num_nodes())
        .rev()
        .find(|&n| tree.child_segments(n).is_empty() && tree.node(n).parent_segment.is_some())?;
    let dropped_segment = tree.node(victim).parent_segment? as usize;
    let dropped_pin = tree.node(victim).pin.map(|p| p as usize);
    if dropped_pin == Some(0) {
        return None; // never drop the source
    }

    // Rebuild pins without the dropped one, remembering the index shift.
    let remap_pin = |p: usize| match dropped_pin {
        Some(d) if p > d => p - 1,
        _ => p,
    };
    let pins: Vec<Pin> = net
        .pins()
        .iter()
        .enumerate()
        .filter(|&(i, _)| Some(i) != dropped_pin)
        .map(|(_, &p)| p)
        .collect();
    if pins.len() < 2 {
        return None;
    }

    // Replay the tree in storage order, skipping the dropped segment.
    // Node ids shift by one past the victim; `node_map` tracks them.
    let mut node_map = vec![usize::MAX; tree.num_nodes()];
    node_map[tree.root()] = 0;
    let mut b = RouteTreeBuilder::new(tree.node(tree.root()).cell);
    for (s, seg) in tree.segments().iter().enumerate() {
        if s == dropped_segment {
            continue;
        }
        let from = node_map[seg.from as usize];
        // invariant: storage order lists parents before children and
        // only the leaf-side subtree (the victim alone) is skipped, so
        // the from-node has already been replayed.
        debug_assert_ne!(from, usize::MAX);
        let to = tree.node(seg.to as usize).cell;
        let new = b.add_segment(from, to).ok()?;
        node_map[seg.to as usize] = new;
    }
    for (n, &mapped) in node_map.iter().enumerate().take(tree.num_nodes()) {
        if n == victim {
            continue;
        }
        if let Some(p) = tree.node(n).pin {
            b.attach_pin(mapped, remap_pin(p as usize) as u32).ok()?;
        }
    }
    let mut out = Net::new(net.name(), pins, b.build().ok()?);
    out.driver_resistance = net.driver_resistance;
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, GenParams};
    use prng::Rng;

    fn big_workload() -> Workload {
        // Odd trials are the larger non-oracle instances.
        let mut rng = Rng::seed_from_u64(33).fork(5);
        let p = GenParams::lattice(5, &mut rng);
        generate(&p, &mut rng)
    }

    #[test]
    fn shrinks_to_a_single_net_when_any_net_fails() {
        let w = big_workload();
        assert!(w.netlist.len() > 1);
        let mut calls = 0usize;
        let out = shrink(&w, &mut |c| {
            calls += 1;
            c.instance().is_ok() && !c.netlist.is_empty()
        });
        assert_eq!(out.netlist.len(), 1, "predicate holds for any subset");
        assert!(calls > 0);
        assert!((out.critical_ratio - 1.0).abs() < f64::EPSILON);
        out.instance().unwrap();
    }

    #[test]
    fn keeps_the_net_the_failure_depends_on() {
        let w = big_workload();
        let marker = w.netlist.net(2).name().to_string();
        let out = shrink(&w, &mut |c| {
            c.netlist.nets().iter().any(|n| n.name() == marker)
        });
        assert_eq!(out.netlist.len(), 1);
        assert_eq!(out.netlist.net(0).name(), marker);
    }

    #[test]
    fn trims_branches_off_multi_sink_nets() {
        let w = big_workload();
        // Find a 3-pin net to exercise branch trimming.
        let Some(ti) = (0..w.netlist.len()).find(|&i| w.netlist.net(i).sinks().len() == 2) else {
            return; // this seed always has one, but stay robust
        };
        let trimmed = trim_leaf(w.netlist.net(ti)).expect("3-pin net must trim");
        assert_eq!(trimmed.sinks().len(), 1);
        assert_eq!(
            trimmed.tree().num_segments(),
            w.netlist.net(ti).tree().num_segments() - 1
        );
        trimmed
            .validate(w.grid_spec.width, w.grid_spec.height)
            .unwrap();
    }

    #[test]
    fn shrinking_is_deterministic() {
        let w = big_workload();
        let run = || {
            shrink(&w.clone(), &mut |c| {
                c.netlist.len() % 2 == 1 || c.netlist.len() > 4
            })
        };
        assert_eq!(run(), run());
    }
}
