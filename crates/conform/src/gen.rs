//! Seeded workload generation across a parameter lattice.
//!
//! [`GenParams::lattice`] walks trial indices through every combination
//! of layer-stack depth (2–8), tight vs. loose capacities and the
//! degenerate corners the paper's pipeline must survive (single-segment
//! nets, a zero-capacity layer, all nets critical, via-stack-dominated
//! paths). [`generate`] turns the parameters plus a [`Rng`] stream into
//! a [`Workload`]: a reproducible grid recipe + routed netlist that can
//! be instantiated as a [`flow::Instance`] any number of times. Every
//! workload is valid by construction — the instance constructor
//! re-checks all structural contracts.

use flow::{FlowError, Instance};
use grid::{Cell, Direction, Edge2d, Grid, GridBuilder, Layer};
use net::{Assignment, Net, Netlist, Pin, RouteTreeBuilder};
use prng::Rng;

/// The degenerate corner (if any) a trial stresses.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Degenerate {
    /// Plain lattice point, no special structure.
    None,
    /// Every net is one straight segment.
    SingleSegment,
    /// One routing layer has zero capacity on every edge.
    ZeroCapacityLayer,
    /// `critical_ratio = 1`: the engines release every net.
    AllCritical,
    /// Unit-length segments: delay is dominated by pin/via stacks.
    ViaStackOnly,
}

impl Degenerate {
    /// Short lattice label for diagnostics.
    pub fn label(self) -> &'static str {
        match self {
            Degenerate::None => "plain",
            Degenerate::SingleSegment => "single-segment",
            Degenerate::ZeroCapacityLayer => "zero-cap-layer",
            Degenerate::AllCritical => "all-critical",
            Degenerate::ViaStackOnly => "via-stack-only",
        }
    }
}

/// One point of the generator's parameter lattice.
#[derive(Clone, PartialEq, Debug)]
pub struct GenParams {
    /// Trial index the point was derived from.
    pub trial: u64,
    /// Metal layers in the stack (2–8).
    pub layers: usize,
    /// Grid width in tiles.
    pub width: u16,
    /// Grid height in tiles.
    pub height: u16,
    /// Number of nets to generate.
    pub num_nets: usize,
    /// Base edge capacity (tight: 1–2, loose: 6–10).
    pub capacity: u32,
    /// Degenerate corner this trial stresses.
    pub degenerate: Degenerate,
    /// Fraction of nets the engines will release.
    pub critical_ratio: f64,
    /// Whether the trial targets the brute-force oracle (small enough
    /// to enumerate every assignment).
    pub oracle_sized: bool,
}

impl GenParams {
    /// Derives the lattice point for `trial`, drawing sizes from `rng`.
    ///
    /// Even trials are oracle-sized (a handful of nets, every net
    /// released); odd trials are larger metamorphic-property targets.
    /// Layer count, capacity tightness and the degenerate corner cycle
    /// on coprime periods so a modest trial budget covers the whole
    /// lattice.
    pub fn lattice(trial: u64, rng: &mut Rng) -> GenParams {
        let layers = 2 + (trial % 7) as usize;
        let tight = trial.is_multiple_of(3);
        let degenerate = match trial % 5 {
            0 => Degenerate::None,
            1 => Degenerate::SingleSegment,
            2 => Degenerate::ZeroCapacityLayer,
            3 => Degenerate::AllCritical,
            _ => Degenerate::ViaStackOnly,
        };
        let oracle_sized = trial.is_multiple_of(2);
        let (width, height, num_nets) = if oracle_sized {
            (
                rng.range_u16(6, 10),
                rng.range_u16(6, 10),
                rng.range_usize(2, 4),
            )
        } else {
            (
                rng.range_u16(10, 16),
                rng.range_u16(10, 16),
                rng.range_usize(8, 18),
            )
        };
        let capacity = if tight {
            rng.range_u32(1, 2)
        } else {
            rng.range_u32(6, 10)
        };
        let critical_ratio = if oracle_sized || degenerate == Degenerate::AllCritical {
            1.0
        } else {
            [0.25, 0.5, 1.0][rng.range_usize(0, 2)]
        };
        GenParams {
            trial,
            layers,
            width,
            height,
            num_nets,
            capacity,
            degenerate,
            critical_ratio,
            oracle_sized,
        }
    }

    /// One-line lattice description for diagnostics.
    pub fn describe(&self) -> String {
        format!(
            "layers={} grid={}x{} nets={} cap={} ratio={} case={}{}",
            self.layers,
            self.width,
            self.height,
            self.num_nets,
            self.capacity,
            self.critical_ratio,
            self.degenerate.label(),
            if self.oracle_sized { " oracle" } else { "" },
        )
    }
}

/// Electrical and geometric recipe for one layer of a [`GridSpec`].
#[derive(Clone, PartialEq, Debug)]
pub struct LayerSpec {
    /// Layer name.
    pub name: String,
    /// Routing direction.
    pub dir: Direction,
    /// Wire resistance per tile.
    pub resistance: f64,
    /// Wire capacitance per tile.
    pub capacitance: f64,
    /// Drawn wire width.
    pub wire_width: f64,
    /// Minimum wire spacing.
    pub wire_spacing: f64,
    /// Default edge capacity.
    pub capacity: u32,
}

/// A single-edge capacity override applied after grid construction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CapOverride {
    /// Layer the override applies to.
    pub layer: usize,
    /// Lower-coordinate endpoint of the edge (direction follows the
    /// layer).
    pub x: u16,
    /// Lower-coordinate endpoint of the edge.
    pub y: u16,
    /// New capacity.
    pub capacity: u32,
}

/// A reproducible grid construction recipe.
///
/// Workloads carry the recipe rather than the built [`Grid`] so they
/// can be serialized, mutated by the metamorphic property suite
/// (loosen one capacity, add one layer) and rebuilt bit-identically.
#[derive(Clone, PartialEq, Debug)]
pub struct GridSpec {
    /// Grid width in tiles.
    pub width: u16,
    /// Grid height in tiles.
    pub height: u16,
    /// Physical tile dimensions.
    pub tile: (f64, f64),
    /// Via width and spacing.
    pub via_geometry: (f64, f64),
    /// The layer stack, bottom first.
    pub layers: Vec<LayerSpec>,
    /// Optional explicit via-resistance table (`layers.len() - 1`
    /// entries); `None` uses the builder default.
    pub via_resistances: Option<Vec<f64>>,
    /// Per-edge capacity overrides applied after construction.
    pub capacity_overrides: Vec<CapOverride>,
}

impl GridSpec {
    /// Builds the grid the recipe describes.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::Grid`] when the recipe is degenerate or an
    /// override names a nonexistent edge.
    pub fn build(&self) -> Result<Grid, FlowError> {
        let mut b = GridBuilder::new(self.width, self.height)
            .tile_size(self.tile.0, self.tile.1)
            .via_geometry(self.via_geometry.0, self.via_geometry.1);
        for l in &self.layers {
            b = b.push_layer(
                Layer::new(l.name.clone(), l.dir)
                    .with_rc(l.resistance, l.capacitance)
                    .with_geometry(l.wire_width, l.wire_spacing)
                    .with_capacity(l.capacity),
            );
        }
        if let Some(table) = &self.via_resistances {
            b = b.via_resistances(table.clone());
        }
        let mut grid = b.build().map_err(FlowError::Grid)?;
        for o in &self.capacity_overrides {
            if o.layer >= grid.num_layers() {
                return Err(FlowError::Grid(grid::GridError::InvalidAdjustment {
                    detail: format!("override layer {} out of range", o.layer),
                }));
            }
            let edge = Edge2d {
                cell: Cell::new(o.x, o.y),
                dir: grid.layer(o.layer).direction,
            };
            if !grid.contains_edge(edge) {
                return Err(FlowError::Grid(grid::GridError::InvalidAdjustment {
                    detail: format!("override edge {edge} not on the grid"),
                }));
            }
            grid.set_edge_capacity(o.layer, edge, o.capacity);
        }
        Ok(grid)
    }

    /// The paper-profile layer stack used by the generator: alternating
    /// directions starting horizontal, higher layers wider and less
    /// resistive (mirrors `GridBuilder::alternating_layers`).
    pub fn standard_layers(count: usize, capacity: u32) -> Vec<LayerSpec> {
        let mut dir = Direction::Horizontal;
        let mut out = Vec::with_capacity(count);
        for l in 0..count {
            let width = 1.0 + 0.5 * (l / 2) as f64;
            out.push(LayerSpec {
                name: format!("M{}", l + 1),
                dir,
                resistance: 8.0 / f64::powi(2.0, (l / 2) as i32),
                capacitance: 1.0 + 0.15 * l as f64,
                wire_width: width,
                wire_spacing: width,
                capacity,
            });
            dir = dir.flipped();
        }
        out
    }
}

/// A generated problem: grid recipe + routed netlist + release ratio.
///
/// The initial assignment is not stored — it is always
/// [`Assignment::lowest_layers`], so a workload fully determines its
/// [`Instance`].
#[derive(Clone, PartialEq, Debug)]
pub struct Workload {
    /// Lattice point this workload came from (provenance only).
    pub params: GenParams,
    /// Grid construction recipe.
    pub grid_spec: GridSpec,
    /// The routed nets.
    pub netlist: Netlist,
    /// Fraction of nets the engines release.
    pub critical_ratio: f64,
}

impl Workload {
    /// Builds a fresh validated instance (grid + lowest-layer initial
    /// assignment with usage applied).
    ///
    /// # Errors
    ///
    /// Returns the first structural violation as a [`FlowError`];
    /// generator output never triggers one.
    pub fn instance(&self) -> Result<Instance, FlowError> {
        let grid = self.grid_spec.build()?;
        let assignment = Assignment::lowest_layers(&self.netlist, &grid);
        Instance::new(grid, self.netlist.clone(), assignment)
    }

    /// The released net set for this workload's ratio, most critical
    /// first.
    ///
    /// # Errors
    ///
    /// Propagates instance-construction failures.
    pub fn released(&self) -> Result<Vec<usize>, FlowError> {
        self.instance()?.critical_nets(self.critical_ratio)
    }
}

/// Generates the workload for one lattice point.
///
/// All randomness comes from `rng`, so `(params, rng state)` fully
/// determines the result.
pub fn generate(params: &GenParams, rng: &mut Rng) -> Workload {
    let mut layers = GridSpec::standard_layers(params.layers, params.capacity);
    let mut capacity_overrides = Vec::new();
    if params.degenerate == Degenerate::ZeroCapacityLayer && params.layers > 2 {
        // Zero out one non-bottom layer. The two bottom layers stay
        // routable so every direction keeps at least one usable layer.
        let dead = rng.range_usize(2, params.layers - 1);
        layers[dead].capacity = 0;
    }
    let grid_spec = GridSpec {
        width: params.width,
        height: params.height,
        tile: (10.0, 10.0),
        via_geometry: (1.0, 1.0),
        layers,
        via_resistances: None,
        capacity_overrides: Vec::new(),
    };
    // Occasionally tighten a handful of individual edges: the post-map
    // sweep must cope with locally scarce capacity even in loose grids.
    if params.degenerate == Degenerate::None && rng.bool(0.5) {
        for _ in 0..rng.range_usize(1, 4) {
            let layer = rng.range_usize(0, params.layers - 1);
            let dir = grid_spec.layers[layer].dir;
            let (mx, my) = match dir {
                Direction::Horizontal => (params.width - 2, params.height - 1),
                Direction::Vertical => (params.width - 1, params.height - 2),
            };
            capacity_overrides.push(CapOverride {
                layer,
                x: rng.range_u16(0, mx),
                y: rng.range_u16(0, my),
                capacity: 1,
            });
        }
    }
    let grid_spec = GridSpec {
        capacity_overrides,
        ..grid_spec
    };

    let mut netlist = Netlist::new();
    for i in 0..params.num_nets {
        netlist.push(generate_net(params, rng, i));
    }
    Workload {
        params: params.clone(),
        grid_spec,
        netlist,
        critical_ratio: params.critical_ratio,
    }
}

/// Maximum segment length, in tiles, for a given lattice point.
fn max_len(params: &GenParams) -> u16 {
    match params.degenerate {
        Degenerate::ViaStackOnly => 1,
        _ if params.oracle_sized => 4,
        _ => 6,
    }
}

fn generate_net(params: &GenParams, rng: &mut Rng, index: usize) -> Net {
    let shape = match params.degenerate {
        Degenerate::SingleSegment | Degenerate::ViaStackOnly => 0,
        _ => rng.range_usize(0, 4),
    };
    match shape {
        // Straight two-pin net (the majority and all degenerate cases).
        0 | 1 => straight_net(params, rng, index),
        // L-shaped two-pin net.
        2 | 3 => l_net(params, rng, index),
        // Three-pin tree: horizontal trunk plus two vertical branches.
        _ => t_net(params, rng, index),
    }
}

/// Picks a start coordinate and extent so `start + len` stays on a
/// `span`-tile axis.
fn pick_run(rng: &mut Rng, span: u16, len_hi: u16) -> (u16, u16) {
    let len = rng.range_u16(1, len_hi.min(span - 1));
    let start = rng.range_u16(0, span - 1 - len);
    (start, len)
}

fn sink(rng: &mut Rng, cell: Cell) -> Pin {
    Pin::sink(cell, rng.range_f64(0.5, 4.0))
}

fn finish(name: String, rng: &mut Rng, pins: Vec<Pin>, tree: net::RouteTree) -> Net {
    let mut n = Net::new(name, pins, tree);
    if rng.bool(0.3) {
        n.driver_resistance = rng.range_f64(1.0, 10.0);
    }
    n
}

fn straight_net(params: &GenParams, rng: &mut Rng, index: usize) -> Net {
    let horizontal = rng.bool(0.5);
    let (src, dst) = if horizontal {
        let (x, len) = pick_run(rng, params.width, max_len(params));
        let y = rng.range_u16(0, params.height - 1);
        (Cell::new(x, y), Cell::new(x + len, y))
    } else {
        let (y, len) = pick_run(rng, params.height, max_len(params));
        let x = rng.range_u16(0, params.width - 1);
        (Cell::new(x, y), Cell::new(x, y + len))
    };
    let mut b = RouteTreeBuilder::new(src);
    // invariant: dst differs from src along exactly one axis, so the
    // segment is straight with positive length.
    let end = b.add_segment(b.root(), dst).expect("straight segment");
    b.attach_pin(b.root(), 0).expect("fresh root node"); // invariant: pinned once
    b.attach_pin(end, 1).expect("fresh leaf node"); // invariant: end != root, pinned once
    let pins = vec![Pin::source(src, 10.0), sink(rng, dst)];
    // invariant: one segment, two pinned nodes — always a valid tree.
    let tree = b.build().expect("non-empty tree");
    finish(format!("n{index}"), rng, pins, tree)
}

fn l_net(params: &GenParams, rng: &mut Rng, index: usize) -> Net {
    let (x, xlen) = pick_run(rng, params.width, max_len(params));
    let (y, ylen) = pick_run(rng, params.height, max_len(params));
    let src = Cell::new(x, y);
    let bend = Cell::new(x + xlen, y);
    let dst = Cell::new(x + xlen, y + ylen);
    let mut b = RouteTreeBuilder::new(src);
    // invariant: xlen and ylen are both >= 1, so both legs are straight
    // segments of positive length with disjoint edges.
    let mid = b.add_segment(b.root(), bend).expect("horizontal leg");
    let end = b.add_segment(mid, dst).expect("vertical leg"); // invariant: ylen >= 1
    b.attach_pin(b.root(), 0).expect("fresh root node"); // invariant: pinned once
    b.attach_pin(end, 1).expect("fresh leaf node"); // invariant: end != root, pinned once
    let pins = vec![Pin::source(src, 10.0), sink(rng, dst)];
    // invariant: two segments, pinned root and leaf — a valid tree.
    let tree = b.build().expect("non-empty tree");
    finish(format!("n{index}"), rng, pins, tree)
}

fn t_net(params: &GenParams, rng: &mut Rng, index: usize) -> Net {
    let (x, xlen) = pick_run(rng, params.width, max_len(params));
    let (y, up) = pick_run(rng, params.height, max_len(params));
    let down = rng.range_u16(1, max_len(params).min(y.max(1)).max(1));
    let src = Cell::new(x, y);
    let trunk_end = Cell::new(x + xlen, y);
    let sink_a = Cell::new(x + xlen, y + up);
    // Branch down from the source column when there is room below,
    // otherwise up beyond sink_a's row to keep the branch on-grid.
    let sink_b = if y >= down {
        Cell::new(x, y - down)
    } else {
        Cell::new(x, y + up.min(params.height - 1 - y))
    };
    let mut b = RouteTreeBuilder::new(src);
    // invariant: the trunk is horizontal and the branches vertical on
    // different columns (xlen >= 1), so no 2-D edge repeats.
    let mid = b.add_segment(b.root(), trunk_end).expect("trunk");
    let end_a = b.add_segment(mid, sink_a).expect("first branch");
    if sink_b == src {
        // No room for the second branch: fall back to a two-pin net.
        b.attach_pin(b.root(), 0).expect("fresh root node"); // invariant: pinned once
        b.attach_pin(end_a, 1).expect("fresh leaf node"); // invariant: end_a != root
        let pins = vec![Pin::source(src, 10.0), sink(rng, sink_a)];
        // invariant: two segments, pinned root and leaf — valid tree.
        let tree = b.build().expect("non-empty tree");
        return finish(format!("n{index}"), rng, pins, tree);
    }
    // invariant: sink_b != src and sits on the source column, a
    // straight vertical run disjoint from the trunk and first branch.
    let end_b = b.add_segment(b.root(), sink_b).expect("second branch");
    b.attach_pin(b.root(), 0).expect("fresh root node"); // invariant: pinned once
    b.attach_pin(end_a, 1).expect("fresh leaf node"); // invariant: end_a != root
    b.attach_pin(end_b, 2).expect("fresh leaf node"); // invariant: end_b != end_a, root
    let pins = vec![Pin::source(src, 10.0), sink(rng, sink_a), sink(rng, sink_b)];
    // invariant: three segments, three pinned nodes — a valid tree.
    let tree = b.build().expect("non-empty tree");
    finish(format!("n{index}"), rng, pins, tree)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lattice_covers_every_corner() {
        let mut seen_layers = [false; 9];
        let mut seen_cases = std::collections::HashSet::new();
        for trial in 0..70 {
            let mut rng = Rng::seed_from_u64(1).fork(trial);
            let p = GenParams::lattice(trial, &mut rng);
            assert!((2..=8).contains(&p.layers));
            seen_layers[p.layers] = true;
            seen_cases.insert(p.degenerate.label());
        }
        assert!(seen_layers[2..=8].iter().all(|&s| s));
        assert_eq!(seen_cases.len(), 5);
    }

    #[test]
    fn every_lattice_point_yields_a_valid_instance() {
        for trial in 0..40 {
            let mut rng = Rng::seed_from_u64(7).fork(trial);
            let p = GenParams::lattice(trial, &mut rng);
            let w = generate(&p, &mut rng);
            let inst = w.instance().unwrap_or_else(|e| {
                panic!("trial {trial} ({}): invalid workload: {e}", p.describe())
            });
            assert_eq!(inst.netlist().len(), p.num_nets);
            let released = w.released().unwrap();
            assert!(!released.is_empty());
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let make = || {
            let mut rng = Rng::seed_from_u64(5).fork(3);
            let p = GenParams::lattice(3, &mut rng);
            generate(&p, &mut rng)
        };
        assert_eq!(make(), make());
    }

    #[test]
    fn zero_capacity_layer_is_dead() {
        // Trial 2 mod 5 == 2 → ZeroCapacityLayer; need layers > 2.
        let mut rng = Rng::seed_from_u64(11).fork(2);
        let mut p = GenParams::lattice(2, &mut rng);
        p.layers = 5;
        let w = generate(&p, &mut rng);
        let grid = w.grid_spec.build().unwrap();
        let dead = (0..grid.num_layers()).filter(|&l| {
            grid.edges_in_direction(grid.layer(l).direction)
                .all(|e| grid.edge_capacity(l, e) == 0)
        });
        assert_eq!(dead.count(), 1);
    }

    #[test]
    fn rebuilding_the_spec_is_bit_identical() {
        let mut rng = Rng::seed_from_u64(3).fork(9);
        let p = GenParams::lattice(9, &mut rng);
        let w = generate(&p, &mut rng);
        let a = w.grid_spec.build().unwrap();
        let b = w.grid_spec.build().unwrap();
        assert_eq!(a.num_layers(), b.num_layers());
        for l in 0..a.num_layers() {
            assert_eq!(a.layer(l), b.layer(l));
        }
    }
}
