//! Workload serialization: self-contained JSON reproducers.
//!
//! A serialized [`Workload`] carries the full grid recipe and routed
//! netlist, so a failure found by the fuzzer can be replayed (and
//! shrunk, and checked in as a regression test) without the generator
//! or its seed stream. Route trees are stored as their builder replay:
//! node 0 is the root, each segment names its from-node id and to-cell
//! in storage order, which reproduces the original node numbering
//! exactly.

use grid::Direction;
use net::{Net, Netlist, Pin, RouteTreeBuilder};

use crate::gen::{CapOverride, Degenerate, GenParams, GridSpec, LayerSpec, Workload};
use crate::json::{self, Value};

/// Format marker embedded in every reproducer.
pub const FORMAT: &str = "cpla-conform-workload-v1";

fn dir_label(dir: Direction) -> &'static str {
    match dir {
        Direction::Horizontal => "H",
        Direction::Vertical => "V",
    }
}

fn dir_from(label: &str) -> Result<Direction, String> {
    match label {
        "H" => Ok(Direction::Horizontal),
        "V" => Ok(Direction::Vertical),
        other => Err(format!("unknown direction {other:?}")),
    }
}

fn degenerate_from(label: &str) -> Result<Degenerate, String> {
    for d in [
        Degenerate::None,
        Degenerate::SingleSegment,
        Degenerate::ZeroCapacityLayer,
        Degenerate::AllCritical,
        Degenerate::ViaStackOnly,
    ] {
        if d.label() == label {
            return Ok(d);
        }
    }
    Err(format!("unknown degenerate case {label:?}"))
}

fn net_to_json(net: &Net) -> Value {
    let tree = net.tree();
    let pins = net
        .pins()
        .iter()
        .map(|p| {
            json::obj(vec![
                ("x", json::int(u64::from(p.cell.x))),
                ("y", json::int(u64::from(p.cell.y))),
                ("layer", json::int(p.layer as u64)),
                ("capacitance", json::num(p.capacitance)),
            ])
        })
        .collect();
    let segments = tree
        .segments()
        .iter()
        .map(|s| {
            let to = tree.node(s.to as usize).cell;
            Value::Arr(vec![
                json::int(u64::from(s.from)),
                json::int(u64::from(to.x)),
                json::int(u64::from(to.y)),
            ])
        })
        .collect();
    let pin_nodes = (0..tree.num_nodes())
        .filter_map(|n| {
            tree.node(n)
                .pin
                .map(|p| Value::Arr(vec![json::int(u64::from(p)), json::int(n as u64)]))
        })
        .collect();
    json::obj(vec![
        ("name", Value::Str(net.name().to_string())),
        ("driver_resistance", json::num(net.driver_resistance)),
        ("pins", Value::Arr(pins)),
        (
            "root",
            Value::Arr(vec![
                json::int(u64::from(tree.node(tree.root()).cell.x)),
                json::int(u64::from(tree.node(tree.root()).cell.y)),
            ]),
        ),
        ("segments", Value::Arr(segments)),
        ("pin_nodes", Value::Arr(pin_nodes)),
    ])
}

fn net_from_json(v: &Value) -> Result<Net, String> {
    let name = v
        .get("name")
        .and_then(Value::as_str)
        .ok_or("net.name missing")?;
    let driver = v
        .get("driver_resistance")
        .and_then(Value::as_num)
        .ok_or("net.driver_resistance missing")?;
    let mut pins = Vec::new();
    for p in v
        .get("pins")
        .and_then(Value::as_arr)
        .ok_or("net.pins missing")?
    {
        let cell = grid::Cell::new(read_u16(p, "x")?, read_u16(p, "y")?);
        let layer = p
            .get("layer")
            .and_then(Value::as_u64)
            .ok_or("pin.layer missing")? as usize;
        let cap = p
            .get("capacitance")
            .and_then(Value::as_num)
            .ok_or("pin.capacitance missing")?;
        pins.push(Pin::new(cell, cap).on_layer(layer));
    }
    let root = v
        .get("root")
        .and_then(Value::as_arr)
        .ok_or("net.root missing")?;
    if root.len() != 2 {
        return Err("net.root must be [x, y]".into());
    }
    let root = grid::Cell::new(cell_coord(&root[0])?, cell_coord(&root[1])?);
    let mut b = RouteTreeBuilder::new(root);
    for s in v
        .get("segments")
        .and_then(Value::as_arr)
        .ok_or("net.segments missing")?
    {
        let s = s.as_arr().ok_or("segment must be [from, x, y]")?;
        if s.len() != 3 {
            return Err("segment must be [from, x, y]".into());
        }
        let from = s[0].as_u64().ok_or("segment.from not an id")? as usize;
        let to = grid::Cell::new(cell_coord(&s[1])?, cell_coord(&s[2])?);
        b.add_segment(from, to)
            .map_err(|e| format!("segment replay failed: {e}"))?;
    }
    for pn in v
        .get("pin_nodes")
        .and_then(Value::as_arr)
        .ok_or("net.pin_nodes missing")?
    {
        let pn = pn.as_arr().ok_or("pin_nodes entry must be [pin, node]")?;
        if pn.len() != 2 {
            return Err("pin_nodes entry must be [pin, node]".into());
        }
        let pin = pn[0].as_u64().ok_or("pin id not an integer")? as u32;
        let node = pn[1].as_u64().ok_or("node id not an integer")? as usize;
        b.attach_pin(node, pin)
            .map_err(|e| format!("pin attach failed: {e}"))?;
    }
    let tree = b.build().map_err(|e| format!("tree rebuild failed: {e}"))?;
    let mut net = Net::new(name, pins, tree);
    net.driver_resistance = driver;
    Ok(net)
}

fn cell_coord(v: &Value) -> Result<u16, String> {
    let n = v.as_u64().ok_or("coordinate not an integer")?;
    u16::try_from(n).map_err(|_| format!("coordinate {n} out of u16 range"))
}

fn read_u16(v: &Value, key: &str) -> Result<u16, String> {
    let n = v
        .get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("{key} missing or not an integer"))?;
    u16::try_from(n).map_err(|_| format!("{key}={n} out of u16 range"))
}

fn params_to_json(p: &GenParams) -> Value {
    json::obj(vec![
        ("trial", json::int(p.trial)),
        ("layers", json::int(p.layers as u64)),
        ("width", json::int(u64::from(p.width))),
        ("height", json::int(u64::from(p.height))),
        ("num_nets", json::int(p.num_nets as u64)),
        ("capacity", json::int(u64::from(p.capacity))),
        ("degenerate", Value::Str(p.degenerate.label().to_string())),
        ("critical_ratio", json::num(p.critical_ratio)),
        ("oracle_sized", Value::Bool(p.oracle_sized)),
    ])
}

fn params_from_json(v: &Value) -> Result<GenParams, String> {
    Ok(GenParams {
        trial: v
            .get("trial")
            .and_then(Value::as_u64)
            .ok_or("params.trial")?,
        layers: v
            .get("layers")
            .and_then(Value::as_u64)
            .ok_or("params.layers")? as usize,
        width: read_u16(v, "width")?,
        height: read_u16(v, "height")?,
        num_nets: v
            .get("num_nets")
            .and_then(Value::as_u64)
            .ok_or("params.num_nets")? as usize,
        capacity: v
            .get("capacity")
            .and_then(Value::as_u64)
            .ok_or("params.capacity")? as u32,
        degenerate: degenerate_from(
            v.get("degenerate")
                .and_then(Value::as_str)
                .ok_or("params.degenerate")?,
        )?,
        critical_ratio: v
            .get("critical_ratio")
            .and_then(Value::as_num)
            .ok_or("params.critical_ratio")?,
        oracle_sized: matches!(v.get("oracle_sized"), Some(Value::Bool(true))),
    })
}

fn grid_to_json(g: &GridSpec) -> Value {
    let layers = g
        .layers
        .iter()
        .map(|l| {
            json::obj(vec![
                ("name", Value::Str(l.name.clone())),
                ("dir", Value::Str(dir_label(l.dir).to_string())),
                ("resistance", json::num(l.resistance)),
                ("capacitance", json::num(l.capacitance)),
                ("wire_width", json::num(l.wire_width)),
                ("wire_spacing", json::num(l.wire_spacing)),
                ("capacity", json::int(u64::from(l.capacity))),
            ])
        })
        .collect();
    let overrides = g
        .capacity_overrides
        .iter()
        .map(|o| {
            Value::Arr(vec![
                json::int(o.layer as u64),
                json::int(u64::from(o.x)),
                json::int(u64::from(o.y)),
                json::int(u64::from(o.capacity)),
            ])
        })
        .collect();
    json::obj(vec![
        ("width", json::int(u64::from(g.width))),
        ("height", json::int(u64::from(g.height))),
        (
            "tile",
            Value::Arr(vec![json::num(g.tile.0), json::num(g.tile.1)]),
        ),
        (
            "via_geometry",
            Value::Arr(vec![
                json::num(g.via_geometry.0),
                json::num(g.via_geometry.1),
            ]),
        ),
        ("layers", Value::Arr(layers)),
        (
            "via_resistances",
            match &g.via_resistances {
                None => Value::Null,
                Some(t) => Value::Arr(t.iter().map(|&r| json::num(r)).collect()),
            },
        ),
        ("capacity_overrides", Value::Arr(overrides)),
    ])
}

fn grid_from_json(v: &Value) -> Result<GridSpec, String> {
    let pair = |key: &str| -> Result<(f64, f64), String> {
        let a = v
            .get(key)
            .and_then(Value::as_arr)
            .ok_or_else(|| key.to_string())?;
        if a.len() != 2 {
            return Err(format!("{key} must have two entries"));
        }
        Ok((
            a[0].as_num().ok_or_else(|| key.to_string())?,
            a[1].as_num().ok_or_else(|| key.to_string())?,
        ))
    };
    let mut layers = Vec::new();
    for l in v
        .get("layers")
        .and_then(Value::as_arr)
        .ok_or("grid.layers missing")?
    {
        layers.push(LayerSpec {
            name: l
                .get("name")
                .and_then(Value::as_str)
                .ok_or("layer.name")?
                .to_string(),
            dir: dir_from(l.get("dir").and_then(Value::as_str).ok_or("layer.dir")?)?,
            resistance: l
                .get("resistance")
                .and_then(Value::as_num)
                .ok_or("layer.resistance")?,
            capacitance: l
                .get("capacitance")
                .and_then(Value::as_num)
                .ok_or("layer.capacitance")?,
            wire_width: l
                .get("wire_width")
                .and_then(Value::as_num)
                .ok_or("layer.wire_width")?,
            wire_spacing: l
                .get("wire_spacing")
                .and_then(Value::as_num)
                .ok_or("layer.wire_spacing")?,
            capacity: l
                .get("capacity")
                .and_then(Value::as_u64)
                .ok_or("layer.capacity")? as u32,
        });
    }
    let via_resistances = match v.get("via_resistances") {
        None | Some(Value::Null) => None,
        Some(Value::Arr(a)) => Some(
            a.iter()
                .map(|r| r.as_num().ok_or("via resistance not a number"))
                .collect::<Result<Vec<_>, _>>()?,
        ),
        Some(_) => return Err("grid.via_resistances must be null or an array".into()),
    };
    let mut capacity_overrides = Vec::new();
    for o in v
        .get("capacity_overrides")
        .and_then(Value::as_arr)
        .ok_or("grid.capacity_overrides missing")?
    {
        let o = o.as_arr().ok_or("override must be [layer, x, y, cap]")?;
        if o.len() != 4 {
            return Err("override must be [layer, x, y, cap]".into());
        }
        capacity_overrides.push(CapOverride {
            layer: o[0].as_u64().ok_or("override.layer")? as usize,
            x: cell_coord(&o[1])?,
            y: cell_coord(&o[2])?,
            capacity: o[3].as_u64().ok_or("override.capacity")? as u32,
        });
    }
    Ok(GridSpec {
        width: read_u16(v, "width")?,
        height: read_u16(v, "height")?,
        tile: pair("tile")?,
        via_geometry: pair("via_geometry")?,
        layers,
        via_resistances,
        capacity_overrides,
    })
}

/// Serializes a workload to a JSON value.
pub fn workload_to_json(w: &Workload) -> Value {
    json::obj(vec![
        ("format", Value::Str(FORMAT.to_string())),
        ("params", params_to_json(&w.params)),
        ("grid", grid_to_json(&w.grid_spec)),
        ("critical_ratio", json::num(w.critical_ratio)),
        (
            "nets",
            Value::Arr(w.netlist.nets().iter().map(net_to_json).collect()),
        ),
    ])
}

/// Deserializes a workload from a JSON value.
///
/// # Errors
///
/// Returns a human-readable description of the first malformed field.
pub fn workload_from_json(v: &Value) -> Result<Workload, String> {
    match v.get("format").and_then(Value::as_str) {
        Some(FORMAT) => {}
        other => return Err(format!("unsupported format {other:?}, want {FORMAT:?}")),
    }
    let params = params_from_json(v.get("params").ok_or("params missing")?)?;
    let grid_spec = grid_from_json(v.get("grid").ok_or("grid missing")?)?;
    let critical_ratio = v
        .get("critical_ratio")
        .and_then(Value::as_num)
        .ok_or("critical_ratio missing")?;
    let mut netlist = Netlist::new();
    for n in v
        .get("nets")
        .and_then(Value::as_arr)
        .ok_or("nets missing")?
    {
        netlist.push(net_from_json(n)?);
    }
    Ok(Workload {
        params,
        grid_spec,
        netlist,
        critical_ratio,
    })
}

/// Serializes a workload to pretty-printed JSON text.
pub fn workload_to_string(w: &Workload) -> String {
    workload_to_json(w).to_pretty()
}

/// Parses a workload from JSON text.
///
/// # Errors
///
/// Returns the parse or schema error as text.
pub fn workload_from_str(text: &str) -> Result<Workload, String> {
    workload_from_json(&json::parse(text)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, GenParams};
    use prng::Rng;

    #[test]
    fn workloads_round_trip_exactly() {
        for trial in 0..20 {
            let mut rng = Rng::seed_from_u64(42).fork(trial);
            let p = GenParams::lattice(trial, &mut rng);
            let w = generate(&p, &mut rng);
            let text = workload_to_string(&w);
            let back = workload_from_str(&text)
                .unwrap_or_else(|e| panic!("trial {trial}: round trip failed: {e}\n{text}"));
            assert_eq!(w, back, "trial {trial} altered by serialization");
        }
    }

    #[test]
    fn round_tripped_workloads_rebuild_identical_instances() {
        let mut rng = Rng::seed_from_u64(9).fork(4);
        let p = GenParams::lattice(4, &mut rng);
        let w = generate(&p, &mut rng);
        let back = workload_from_str(&workload_to_string(&w)).unwrap();
        let a = w.instance().unwrap();
        let b = back.instance().unwrap();
        assert_eq!(
            a.metrics(&[0]).avg_tcp.to_bits(),
            b.metrics(&[0]).avg_tcp.to_bits()
        );
        assert_eq!(w.released().unwrap(), back.released().unwrap());
    }

    #[test]
    fn rejects_wrong_format_marker() {
        let err = workload_from_str("{\"format\": \"something-else\"}").unwrap_err();
        assert!(err.contains("unsupported format"), "{err}");
    }
}
