//! Cross-crate tests of the `LayerAssigner` seam: both engines driven
//! through one `Box<dyn LayerAssigner>` code path, and typed error
//! propagation from the parser and the engines to the caller.

use std::io::BufReader;

use cpla::{Cpla, CplaConfig};
use flow::{FlowError, LayerAssigner};
use ispd::SyntheticConfig;
use route::{initial_assignment, route_netlist, RouterConfig};
use tila::{Tila, TilaConfig};

fn fixture(seed: u64) -> (grid::Grid, net::Netlist, net::Assignment) {
    let mut config = SyntheticConfig::small(seed);
    config.num_nets = 300;
    config.capacity = 4;
    let (mut grid, specs) = config.generate().expect("valid config");
    let netlist = route_netlist(&grid, &specs, &RouterConfig::default());
    let assignment = initial_assignment(&mut grid, &netlist);
    (grid, netlist, assignment)
}

#[test]
fn both_engines_run_through_the_layer_assigner_seam() {
    let backends: Vec<Box<dyn LayerAssigner>> = vec![
        Box::new(Cpla::new(CplaConfig {
            critical_ratio: 0.05,
            ..CplaConfig::default()
        })),
        Box::new(Tila::new(TilaConfig {
            critical_ratio: 0.05,
            ..TilaConfig::default()
        })),
    ];
    for backend in backends {
        let (mut grid, netlist, mut assignment) = fixture(31);
        let report = backend
            .assign(&mut grid, &netlist, &mut assignment)
            .unwrap_or_else(|e| panic!("{} failed: {e}", backend.name()));
        assert!(!report.released.is_empty(), "{}", backend.name());
        assert_eq!(report.assigner, backend.name());
        assert!(
            report.final_metrics.avg_tcp <= report.initial_metrics.avg_tcp,
            "{} regressed the released average: {} -> {}",
            backend.name(),
            report.initial_metrics.avg_tcp,
            report.final_metrics.avg_tcp
        );
        assignment
            .validate(&netlist, &grid)
            .unwrap_or_else(|e| panic!("{} left an invalid assignment: {e}", backend.name()));
        assert!(
            backend.config_description().starts_with(backend.name()),
            "description `{}` must lead with the backend name",
            backend.config_description()
        );
    }
}

#[test]
fn invalid_configs_surface_as_typed_errors_from_both_engines() {
    let bad: Vec<Box<dyn LayerAssigner>> = vec![
        Box::new(Cpla::new(CplaConfig {
            critical_ratio: -0.5,
            ..CplaConfig::default()
        })),
        Box::new(Tila::new(TilaConfig {
            critical_ratio: f64::NAN,
            ..TilaConfig::default()
        })),
    ];
    for backend in bad {
        let (mut grid, netlist, mut assignment) = fixture(32);
        let err = backend
            .assign(&mut grid, &netlist, &mut assignment)
            .expect_err("invalid ratio must be rejected");
        assert!(
            matches!(err, FlowError::Config(_)),
            "{}: expected FlowError::Config, got {err:?}",
            backend.name()
        );
    }
}

#[test]
fn malformed_ispd_file_reports_the_offending_line() {
    // Line 7 carries a word where the lower-left coordinate of the
    // routing area should be: the parser must pin the failure to it
    // instead of panicking.
    let text = "\
grid 8 8 2
vertical capacity 0 8
horizontal capacity 8 0
minimum width 1 1
minimum spacing 1 1
via spacing 1 1
0 0 ten 10
num net 0
";
    let err = ispd::parse(BufReader::new(text.as_bytes())).expect_err("file is malformed");
    assert_eq!(err.line, 7, "wrong line pinned: {err}");
    assert_eq!(err.token, "ten");
    let flow_err = FlowError::from(err);
    let msg = flow_err.to_string();
    assert!(
        msg.contains("line 7") && msg.contains("ten"),
        "message must carry position and token: {msg}"
    );
}

#[test]
fn truncated_ispd_file_reports_end_of_input() {
    let text = "grid 8 8 2\nvertical capacity 0 8\n";
    let err = ispd::parse(BufReader::new(text.as_bytes())).expect_err("file is truncated");
    assert!(err.line >= 2, "EOF position must be at the end: {err}");
    assert_eq!(err.token, "", "no token at end of file: {err}");
}
