//! End-to-end pipeline integration tests: generator → router → initial
//! assignment → timing → CPLA, checking cross-crate invariants that no
//! single crate can verify alone.

use cpla::{Cpla, CplaConfig};
use ispd::SyntheticConfig;
use net::{Assignment, Netlist};
use route::{initial_assignment, route_netlist, RouterConfig};

fn pipeline(seed: u64) -> (grid::Grid, Netlist, Assignment) {
    let config = SyntheticConfig::small(seed);
    let (mut grid, specs) = config.generate().expect("valid config");
    let netlist = route_netlist(&grid, &specs, &RouterConfig::default());
    let assignment = initial_assignment(&mut grid, &netlist);
    (grid, netlist, assignment)
}

/// Rebuilds grid usage from scratch and compares with the incrementally
/// maintained state.
fn assert_usage_consistent(grid: &grid::Grid, netlist: &Netlist, assignment: &Assignment) {
    let mut fresh = grid.clone();
    for i in 0..netlist.len() {
        net::remove_net_from_grid(&mut fresh, netlist.net(i), assignment.net_layers(i));
    }
    for i in 0..netlist.len() {
        net::restore_net_to_grid(&mut fresh, netlist.net(i), assignment.net_layers(i));
    }
    assert_eq!(&fresh, grid, "incremental usage diverged from ground truth");
}

#[test]
fn routed_topologies_are_structurally_valid() {
    let (grid, netlist, assignment) = pipeline(11);
    netlist.validate(grid.width(), grid.height()).unwrap();
    assignment.validate(&netlist, &grid).unwrap();
    assert!(netlist.len() > 50, "generator must produce routable nets");
}

#[test]
fn initial_assignment_usage_matches_ground_truth() {
    let (grid, netlist, assignment) = pipeline(12);
    assert_usage_consistent(&grid, &netlist, &assignment);
}

#[test]
fn cpla_improves_and_stays_consistent() {
    let (mut grid, netlist, mut assignment) = pipeline(13);
    let report = Cpla::new(CplaConfig {
        critical_ratio: 0.05,
        ..CplaConfig::default()
    })
    .run(&mut grid, &netlist, &mut assignment)
    .expect("pipeline fixture is well-formed");
    assert!(
        report.final_metrics.avg_tcp <= report.initial_metrics.avg_tcp,
        "CPLA must never regress the released average"
    );
    assert!(!report.released.is_empty());
    assignment.validate(&netlist, &grid).unwrap();
    assert_usage_consistent(&grid, &netlist, &assignment);
}

#[test]
fn cpla_only_touches_released_nets() {
    let (mut grid, netlist, mut assignment) = pipeline(14);
    let report = timing::analyze(&grid, &netlist, &assignment);
    let released = cpla::select_critical_nets(&report, 0.03);
    let untouched: Vec<usize> = (0..netlist.len())
        .filter(|i| !released.contains(i))
        .collect();
    let before: Vec<Vec<usize>> = untouched
        .iter()
        .map(|&i| assignment.net_layers(i).to_vec())
        .collect();
    Cpla::new(CplaConfig::default())
        .run_released(&mut grid, &netlist, &mut assignment, &released)
        .expect("pipeline fixture is well-formed");
    for (k, &i) in untouched.iter().enumerate() {
        assert_eq!(
            assignment.net_layers(i),
            before[k].as_slice(),
            "non-released net {i} was modified"
        );
    }
}

#[test]
fn full_pipeline_is_deterministic() {
    let run = |seed| {
        let (mut grid, netlist, mut assignment) = pipeline(seed);
        Cpla::new(CplaConfig {
            critical_ratio: 0.05,
            ..CplaConfig::default()
        })
        .run(&mut grid, &netlist, &mut assignment)
        .expect("pipeline fixture is well-formed");
        (grid, assignment)
    };
    let (g1, a1) = run(15);
    let (g2, a2) = run(15);
    assert_eq!(a1, a2);
    assert_eq!(g1, g2);
}

#[test]
fn timing_is_invariant_under_usage_rebuild() {
    // Timing depends only on netlist + assignment, never on usage
    // tallies; rebuilding usage must not change any delay.
    let (grid, netlist, assignment) = pipeline(16);
    let before = timing::analyze(&grid, &netlist, &assignment);
    let mut rebuilt = grid.clone();
    for i in 0..netlist.len() {
        net::remove_net_from_grid(&mut rebuilt, netlist.net(i), assignment.net_layers(i));
        net::restore_net_to_grid(&mut rebuilt, netlist.net(i), assignment.net_layers(i));
    }
    let after = timing::analyze(&rebuilt, &netlist, &assignment);
    assert_eq!(before, after);
}
