//! Engine-level integration tests: TILA vs CPLA from identical starting
//! states, relaxation-vs-exact consistency, and solver interchange.

use cpla::problem::{PartitionProblem, ProblemConfig};
use cpla::{Cpla, CplaConfig, Metrics, SolverKind};
use ispd::SyntheticConfig;
use net::SegmentRef;
use route::{initial_assignment, route_netlist, RouterConfig};
use tila::{Tila, TilaConfig};

struct Fixture {
    grid: grid::Grid,
    netlist: net::Netlist,
    assignment: net::Assignment,
    released: Vec<usize>,
}

fn fixture(seed: u64) -> Fixture {
    let mut config = SyntheticConfig::small(seed);
    config.num_nets = 400;
    config.capacity = 4;
    let (mut grid, specs) = config.generate().expect("valid config");
    let netlist = route_netlist(&grid, &specs, &RouterConfig::default());
    let assignment = initial_assignment(&mut grid, &netlist);
    let report = timing::analyze(&grid, &netlist, &assignment);
    let released = cpla::select_critical_nets(&report, 0.05);
    Fixture {
        grid,
        netlist,
        assignment,
        released,
    }
}

#[test]
fn both_engines_improve_over_initial() {
    let f = fixture(21);
    let initial = Metrics::measure(&f.grid, &f.netlist, &f.assignment, &f.released);

    let mut tila_grid = f.grid.clone();
    let mut tila_a = f.assignment.clone();
    Tila::new(TilaConfig::default())
        .run(&mut tila_grid, &f.netlist, &mut tila_a, &f.released)
        .expect("fixture is well-formed");
    let tila_m = Metrics::measure(&tila_grid, &f.netlist, &tila_a, &f.released);

    let mut cpla_grid = f.grid.clone();
    let mut cpla_a = f.assignment.clone();
    Cpla::new(CplaConfig::default())
        .run_released(&mut cpla_grid, &f.netlist, &mut cpla_a, &f.released)
        .expect("fixture is well-formed");
    let cpla_m = Metrics::measure(&cpla_grid, &f.netlist, &cpla_a, &f.released);

    assert!(tila_m.avg_tcp < initial.avg_tcp, "TILA must improve");
    assert!(cpla_m.avg_tcp < initial.avg_tcp, "CPLA must improve");
    // The critical-path-focused objective must not lose to the
    // sum-delay baseline by more than noise on the released average.
    assert!(
        cpla_m.avg_tcp <= tila_m.avg_tcp * 1.05,
        "CPLA {} vs TILA {}",
        cpla_m.avg_tcp,
        tila_m.avg_tcp
    );
}

#[test]
fn sdp_and_ilp_modes_land_close() {
    let f = fixture(22);
    let run = |solver: SolverKind| {
        let mut grid = f.grid.clone();
        let mut a = f.assignment.clone();
        Cpla::new(CplaConfig {
            solver,
            ..CplaConfig::default()
        })
        .run_released(&mut grid, &f.netlist, &mut a, &f.released)
        .expect("fixture is well-formed");
        Metrics::measure(&grid, &f.netlist, &a, &f.released)
    };
    let sdp = run(CplaConfig::default().solver);
    let ilp = run(SolverKind::Ilp {
        node_budget: 1_000_000,
    });
    // Fig. 7's claim: the relaxation matches the exact solver closely.
    let ratio = sdp.avg_tcp / ilp.avg_tcp;
    assert!(
        (0.85..=1.15).contains(&ratio),
        "SDP {} vs ILP {} (ratio {ratio})",
        sdp.avg_tcp,
        ilp.avg_tcp
    );
}

#[test]
fn sdp_relaxation_lower_bounds_partition_ilp_on_real_problems() {
    // Extract actual partition problems from a real benchmark state and
    // verify the relaxation bound on each.
    let f = fixture(23);
    let ctx = cpla::timing_context(&f.grid, &f.netlist, &f.assignment, &f.released, 4.0);
    let segments: Vec<SegmentRef> = f
        .released
        .iter()
        .flat_map(|&ni| {
            (0..f.netlist.net(ni).tree().num_segments())
                .map(move |s| SegmentRef::new(ni as u32, s as u32))
        })
        .collect();
    let (partitions, _) = cpla::partition::partition_segments(
        &f.netlist,
        &segments,
        f.grid.width(),
        f.grid.height(),
        4,
        8,
    );
    let mut checked = 0;
    for part in partitions.iter().take(6) {
        let problem = PartitionProblem::extract(
            &f.grid,
            &f.netlist,
            &f.assignment,
            &part.segments,
            &|r| ctx[&r],
            &ProblemConfig::default(),
        );
        let Some(ilp) = problem.to_choice_problem().solve(2_000_000) else {
            continue;
        };
        if !ilp.optimal {
            continue;
        }
        let (sdp, _) = problem.to_sdp();
        let sol = solver::SdpSolver::default().solve(&sdp);
        assert!(
            sol.objective <= ilp.objective * 1.05 + 1e-6,
            "partition relaxation {} above exact optimum {}",
            sol.objective,
            ilp.objective
        );
        checked += 1;
    }
    assert!(checked >= 3, "too few partitions verified ({checked})");
}

#[test]
fn engines_preserve_non_released_usage() {
    let f = fixture(24);
    let mut grid = f.grid.clone();
    let mut a = f.assignment.clone();
    Tila::new(TilaConfig::default())
        .run(&mut grid, &f.netlist, &mut a, &f.released)
        .expect("fixture is well-formed");
    // Removing every net must drain usage to exactly zero — catches
    // leaked or double-counted wires/vias.
    for i in 0..f.netlist.len() {
        net::remove_net_from_grid(&mut grid, f.netlist.net(i), a.net_layers(i));
    }
    assert_eq!(grid.total_wire_overflow(), 0);
    for l in 0..grid.num_layers() {
        let dir = grid.layer(l).direction;
        for e in grid.edges_in_direction(dir) {
            assert_eq!(grid.edge_usage(l, e), 0, "left-over wire on {e}");
        }
        for c in grid.cells() {
            assert_eq!(grid.via_usage(c, l), 0, "left-over via at {c}");
        }
    }
}

#[test]
fn higher_critical_ratio_releases_more_nets() {
    let f = fixture(25);
    let report = timing::analyze(&f.grid, &f.netlist, &f.assignment);
    let small = cpla::select_critical_nets(&report, 0.01);
    let large = cpla::select_critical_nets(&report, 0.05);
    assert!(large.len() > small.len());
    // The small set is a prefix of the large one (same criticality
    // order).
    assert_eq!(&large[..small.len()], small.as_slice());
}
