//! Budget-driven flow: derive required times, release exactly the
//! violating nets, repair with CPLA, and verify the slack picture
//! improves — the timing-closure loop the paper's introduction
//! motivates.

use cpla::{Cpla, CplaConfig};
use ispd::SyntheticConfig;
use route::{initial_assignment, route_netlist, RouterConfig};
use timing::{RequiredTimes, SlackReport};

#[test]
fn cpla_repairs_budget_violations() {
    let mut config = SyntheticConfig::small(77);
    config.num_nets = 300;
    config.capacity = 5;
    let (mut grid, specs) = config.generate().expect("valid config");
    let netlist = route_netlist(&grid, &specs, &RouterConfig::default());
    let mut assignment = initial_assignment(&mut grid, &netlist);

    // Budgets at 60% of the current arrivals of the slowest nets: the
    // top decile violates, everything else has margin.
    let report = timing::analyze(&grid, &netlist, &assignment);
    let order = report.nets_by_criticality();
    let mut required = RequiredTimes::uniform(f64::INFINITY);
    for &ni in order.iter().take(netlist.len() / 10) {
        for &(pin, delay) in report.net(ni).sink_delays() {
            required.set(ni, pin, delay * 0.6);
        }
    }
    let before = SlackReport::new(&report, &required);
    assert!(before.violations() > 0, "fixture must start violating");
    let released = before.violating_nets();

    Cpla::new(CplaConfig::default())
        .run_released(&mut grid, &netlist, &mut assignment, &released)
        .expect("fixture is well-formed");

    let after_report = timing::analyze(&grid, &netlist, &assignment);
    let after = SlackReport::new(&after_report, &required);
    assert!(
        after.total_negative_slack() > before.total_negative_slack(),
        "TNS must improve: {} -> {}",
        before.total_negative_slack(),
        after.total_negative_slack()
    );
    assert!(
        after.worst_slack().unwrap() >= before.worst_slack().unwrap(),
        "WNS must not regress"
    );
}

#[test]
fn slack_selection_matches_ratio_selection_on_scaled_budgets() {
    // When budgets are a uniform scale of current arrivals, the
    // violating set under scale s equals the set of all nets (s < 1) or
    // none (s > 1): consistency between the two selection APIs.
    let config = SyntheticConfig::small(78);
    let (mut grid, specs) = config.generate().expect("valid config");
    let netlist = route_netlist(&grid, &specs, &RouterConfig::default());
    let assignment = initial_assignment(&mut grid, &netlist);
    let report = timing::analyze(&grid, &netlist, &assignment);

    let tight = RequiredTimes::from_report(&report, 0.5);
    let all = SlackReport::new(&report, &tight).violating_nets();
    assert_eq!(all.len(), report.len());

    let loose = RequiredTimes::from_report(&report, 2.0);
    assert!(SlackReport::new(&report, &loose)
        .violating_nets()
        .is_empty());
}
