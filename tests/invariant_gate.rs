//! Runtime invariant-audit gate over the four pinned snapshot
//! workloads.
//!
//! With `CplaConfig::audit_invariants` on, every Gate stage and the
//! final incumbent restore re-verify the paper's constraints — 4b (one
//! layer per segment, direction-correct), 4c (edge capacity), 4d (via
//! capacity and the `V_o` overflow tally) — plus the incremental Elmore
//! caches against from-scratch recomputation. The audited run must both
//! succeed (no invariant drift anywhere in the pipeline) and land on
//! bit-identical results to the unaudited run (observation must not
//! perturb the experiment).

use cpla::{Cpla, CplaConfig, PipelineMode};
use ispd::SyntheticConfig;
use route::{initial_assignment, route_netlist, RouterConfig};

struct Outcome {
    report: cpla::CplaReport,
    grid: grid::Grid,
    assignment: net::Assignment,
    netlist: net::Netlist,
}

fn run(mode: PipelineMode, seed: u64, audit_invariants: bool) -> Outcome {
    let cfg = SyntheticConfig::small(seed);
    let (mut grid, specs) = cfg.generate().expect("valid config");
    let netlist = route_netlist(&grid, &specs, &RouterConfig::default());
    let mut assignment = initial_assignment(&mut grid, &netlist);
    let report = Cpla::new(CplaConfig {
        critical_ratio: 0.05,
        max_rounds: 8,
        threads: 1,
        mode,
        audit_invariants,
        ..CplaConfig::default()
    })
    .run(&mut grid, &netlist, &mut assignment)
    .expect("snapshot workload is well-formed");
    Outcome {
        report,
        grid,
        assignment,
        netlist,
    }
}

#[test]
fn audited_runs_match_unaudited_runs_on_all_pinned_workloads() {
    for mode in [PipelineMode::Legacy, PipelineMode::Incremental] {
        for seed in [3, 42] {
            let plain = run(mode, seed, false);
            let audited = run(mode, seed, true);
            let label = format!("mode={mode:?} seed={seed}");
            assert_eq!(
                plain.report.final_metrics.avg_tcp.to_bits(),
                audited.report.final_metrics.avg_tcp.to_bits(),
                "{label}: the audit gate perturbed avg_tcp"
            );
            assert_eq!(
                plain.report.final_metrics.max_tcp.to_bits(),
                audited.report.final_metrics.max_tcp.to_bits(),
                "{label}: the audit gate perturbed max_tcp"
            );
            assert_eq!(
                plain.report.final_metrics.via_count, audited.report.final_metrics.via_count,
                "{label}: the audit gate perturbed via_count"
            );
            assert_eq!(
                plain.report.rounds.len(),
                audited.report.rounds.len(),
                "{label}: the audit gate perturbed the round count"
            );
            assert_eq!(
                plain.assignment, audited.assignment,
                "{label}: the audit gate perturbed the final assignment"
            );
            // The final state must also satisfy the invariants when
            // checked directly (not just when the engine checks it).
            audit::check_solution(&audited.grid, &audited.netlist, &audited.assignment)
                .unwrap_or_else(|e| panic!("{label}: final state violates invariants: {e}"));
        }
    }
}

#[test]
fn the_gate_rejects_a_corrupted_solution() {
    // Sanity-check that check_solution actually has teeth on a real
    // workload: sabotage one net's recorded layers after the run.
    let mut out = run(PipelineMode::Incremental, 3, false);
    let layers = out.assignment.net_layers(0).to_vec();
    let seg_dir = out.netlist.net(0).tree().segment(0).dir;
    let wrong = out
        .grid
        .layers_in_direction(seg_dir.flipped())
        .next()
        .expect("grids have layers in both directions");
    let mut bad = layers.clone();
    bad[0] = wrong;
    out.assignment.set_net_layers(0, bad);
    assert!(
        audit::check_solution(&out.grid, &out.netlist, &out.assignment).is_err(),
        "a direction-violating layer must fail the 4b check"
    );
}
