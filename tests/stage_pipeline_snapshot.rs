//! Differential and golden tests pinning the stage-based driver to the
//! pre-refactor engine, bit for bit.
//!
//! The expected rows below were recorded from the monolithic
//! `Cpla::run` loop *before* it was decomposed into discrete flow
//! stages (see `examples/record_snapshot.rs`). Any behavioral drift in
//! the refactor — a reordered stage, a cache consulted differently, a
//! float summed in another order — shows up here as a changed bit
//! pattern, not as an invisible fraction of a picosecond.

use cpla::{Cpla, CplaConfig, PipelineMode, SolveBackend};
use ispd::SyntheticConfig;
use route::{initial_assignment, route_netlist, RouterConfig};

/// One recorded engine outcome on a fixed-seed workload.
struct Expected {
    mode: PipelineMode,
    seed: u64,
    /// `f64::to_bits` of the final released-average delay.
    avg_bits: u64,
    /// `f64::to_bits` of the final released-maximum delay.
    max_bits: u64,
    via_overflow: u64,
    via_count: u64,
    rounds: usize,
    partitions_solved: usize,
    partitions_reused: usize,
    evaluations: u64,
    gate_accepted: usize,
    gate_rejected: usize,
    released: &'static [usize],
}

/// Recorded by `examples/record_snapshot.rs` (config:
/// `SyntheticConfig::small(seed)`, ratio 0.05, 8 rounds, 1 thread).
/// Last re-pinned after the via-overflow pricing and preference-gated
/// post-mapping fixes: the partition extraction now charges the full
/// `α` weight for vias through at-capacity layers, and Algorithm-1
/// mapping no longer hoists segments onto top layers the relaxation
/// did not pick, so every row moved.
const SNAPSHOT: &[Expected] = &[
    Expected {
        mode: PipelineMode::Legacy,
        seed: 3,
        avg_bits: 0x4081dcb3521e8fc0,
        max_bits: 0x4087a09bd0b1666a,
        via_overflow: 0,
        via_count: 354,
        rounds: 4,
        partitions_solved: 38,
        partitions_reused: 0,
        evaluations: 76,
        gate_accepted: 0,
        gate_rejected: 0,
        released: &[63, 72, 118, 51, 62, 24],
    },
    Expected {
        mode: PipelineMode::Legacy,
        seed: 42,
        avg_bits: 0x40894b561c57ad6f,
        max_bits: 0x409eee5ede61f141,
        via_overflow: 0,
        via_count: 372,
        rounds: 5,
        partitions_solved: 42,
        partitions_reused: 0,
        evaluations: 84,
        gate_accepted: 0,
        gate_rejected: 0,
        released: &[46, 48, 85, 19, 64, 0],
    },
    Expected {
        mode: PipelineMode::Incremental,
        seed: 3,
        avg_bits: 0x40815a6112938e9e,
        max_bits: 0x4087a09bd0b1666a,
        via_overflow: 0,
        via_count: 348,
        rounds: 4,
        partitions_solved: 38,
        partitions_reused: 0,
        evaluations: 76,
        gate_accepted: 14,
        gate_rejected: 2,
        released: &[63, 72, 118, 51, 62, 24],
    },
    Expected {
        mode: PipelineMode::Incremental,
        seed: 42,
        avg_bits: 0x40881471ccf1109d,
        max_bits: 0x409e5631bc4e257a,
        via_overflow: 0,
        via_count: 370,
        rounds: 7,
        partitions_solved: 53,
        partitions_reused: 6,
        evaluations: 106,
        gate_accepted: 18,
        gate_rejected: 16,
        released: &[46, 48, 85, 19, 64, 0],
    },
];

fn run(mode: PipelineMode, seed: u64) -> cpla::CplaReport {
    run_backend(mode, seed, SolveBackend::PerLeaf)
}

fn run_backend(mode: PipelineMode, seed: u64, solve_backend: SolveBackend) -> cpla::CplaReport {
    let cfg = SyntheticConfig::small(seed);
    let (mut grid, specs) = cfg.generate().expect("valid config");
    let netlist = route_netlist(&grid, &specs, &RouterConfig::default());
    let mut assignment = initial_assignment(&mut grid, &netlist);
    Cpla::new(CplaConfig {
        critical_ratio: 0.05,
        max_rounds: 8,
        threads: 1,
        mode,
        solve_backend,
        ..CplaConfig::default()
    })
    .run(&mut grid, &netlist, &mut assignment)
    .expect("snapshot workload is well-formed")
}

#[test]
fn stage_driver_matches_the_pre_refactor_engine_bit_for_bit() {
    for e in SNAPSHOT {
        let r = run(e.mode, e.seed);
        let label = format!("mode={:?} seed={}", e.mode, e.seed);
        assert_eq!(
            r.final_metrics.avg_tcp.to_bits(),
            e.avg_bits,
            "{label}: avg_tcp drifted to {}",
            r.final_metrics.avg_tcp
        );
        assert_eq!(
            r.final_metrics.max_tcp.to_bits(),
            e.max_bits,
            "{label}: max_tcp drifted to {}",
            r.final_metrics.max_tcp
        );
        assert_eq!(r.final_metrics.via_overflow, e.via_overflow, "{label}: OV#");
        assert_eq!(r.final_metrics.via_count, e.via_count, "{label}: via#");
        assert_eq!(r.rounds.len(), e.rounds, "{label}: rounds");
        assert_eq!(
            r.stats.partitions_solved, e.partitions_solved,
            "{label}: partitions_solved"
        );
        assert_eq!(
            r.stats.partitions_reused, e.partitions_reused,
            "{label}: partitions_reused"
        );
        assert_eq!(r.stats.evaluations, e.evaluations, "{label}: evaluations");
        assert_eq!(
            r.stats.gate_accepted, e.gate_accepted,
            "{label}: gate_accepted"
        );
        assert_eq!(
            r.stats.gate_rejected, e.gate_rejected,
            "{label}: gate_rejected"
        );
        assert_eq!(r.released, e.released, "{label}: released set");
    }
}

#[test]
fn batched_backend_reproduces_every_pinned_snapshot() {
    // The batched SoA backend claims bit-identity with the per-leaf
    // path; the strongest check is against the *pre-refactor* recorded
    // rows themselves — same four workloads, same expected bits, only
    // the Solve-stage execution shape changed.
    for e in SNAPSHOT {
        let r = run_backend(e.mode, e.seed, SolveBackend::Batched);
        let label = format!("batched mode={:?} seed={}", e.mode, e.seed);
        assert_eq!(
            r.final_metrics.avg_tcp.to_bits(),
            e.avg_bits,
            "{label}: avg_tcp drifted to {}",
            r.final_metrics.avg_tcp
        );
        assert_eq!(
            r.final_metrics.max_tcp.to_bits(),
            e.max_bits,
            "{label}: max_tcp drifted to {}",
            r.final_metrics.max_tcp
        );
        assert_eq!(r.final_metrics.via_overflow, e.via_overflow, "{label}: OV#");
        assert_eq!(r.final_metrics.via_count, e.via_count, "{label}: via#");
        assert_eq!(r.rounds.len(), e.rounds, "{label}: rounds");
        assert_eq!(
            r.stats.partitions_solved, e.partitions_solved,
            "{label}: partitions_solved"
        );
        assert_eq!(
            r.stats.partitions_reused, e.partitions_reused,
            "{label}: partitions_reused"
        );
        assert_eq!(r.stats.evaluations, e.evaluations, "{label}: evaluations");
        assert_eq!(
            r.stats.gate_accepted, e.gate_accepted,
            "{label}: gate_accepted"
        );
        assert_eq!(
            r.stats.gate_rejected, e.gate_rejected,
            "{label}: gate_rejected"
        );
        assert_eq!(r.released, e.released, "{label}: released set");
        assert!(r.stats.batch_sweeps > 0, "{label}: batched backend unused");
    }
}

#[test]
fn incremental_never_loses_to_legacy() {
    // The two pipelines intentionally diverge: the incremental mode's
    // per-net exact-timing gate filters mapped proposals the legacy
    // mode accepts wholesale. The differential invariant worth pinning
    // is dominance — the gate exists to reject regressions, so the
    // incremental answer must be at least as good on every recorded
    // workload, at no overflow cost.
    for seed in [3u64, 42] {
        let legacy = run(PipelineMode::Legacy, seed);
        let incremental = run(PipelineMode::Incremental, seed);
        assert!(
            incremental.final_metrics.avg_tcp <= legacy.final_metrics.avg_tcp,
            "seed {seed}: Avg(Tcp) {} worse than legacy {}",
            incremental.final_metrics.avg_tcp,
            legacy.final_metrics.avg_tcp
        );
        assert!(
            incremental.final_metrics.max_tcp <= legacy.final_metrics.max_tcp,
            "seed {seed}: Max(Tcp) {} worse than legacy {}",
            incremental.final_metrics.max_tcp,
            legacy.final_metrics.max_tcp
        );
        assert!(incremental.final_metrics.via_overflow <= legacy.final_metrics.via_overflow);
        assert_eq!(legacy.released, incremental.released);
    }
}
