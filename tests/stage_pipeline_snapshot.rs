//! Differential and golden tests pinning the stage-based driver to the
//! pre-refactor engine, bit for bit.
//!
//! The expected rows below were recorded from the monolithic
//! `Cpla::run` loop *before* it was decomposed into discrete flow
//! stages (see `examples/record_snapshot.rs`). Any behavioral drift in
//! the refactor — a reordered stage, a cache consulted differently, a
//! float summed in another order — shows up here as a changed bit
//! pattern, not as an invisible fraction of a picosecond.

use cpla::{Cpla, CplaConfig, PipelineMode};
use ispd::SyntheticConfig;
use route::{initial_assignment, route_netlist, RouterConfig};

/// One recorded engine outcome on a fixed-seed workload.
struct Expected {
    mode: PipelineMode,
    seed: u64,
    /// `f64::to_bits` of the final released-average delay.
    avg_bits: u64,
    /// `f64::to_bits` of the final released-maximum delay.
    max_bits: u64,
    via_overflow: u64,
    via_count: u64,
    rounds: usize,
    partitions_solved: usize,
    partitions_reused: usize,
    evaluations: u64,
    gate_accepted: usize,
    gate_rejected: usize,
    released: &'static [usize],
}

/// Recorded from the pre-refactor engine at commit `d425217`
/// (config: `SyntheticConfig::small(seed)`, ratio 0.05, 8 rounds,
/// 1 thread).
const SNAPSHOT: &[Expected] = &[
    Expected {
        mode: PipelineMode::Legacy,
        seed: 3,
        avg_bits: 0x40816093ab6d42d2,
        max_bits: 0x4087a09bd0b1666a,
        via_overflow: 0,
        via_count: 361,
        rounds: 5,
        partitions_solved: 47,
        partitions_reused: 0,
        evaluations: 94,
        gate_accepted: 0,
        gate_rejected: 0,
        released: &[63, 72, 118, 51, 62, 24],
    },
    Expected {
        mode: PipelineMode::Legacy,
        seed: 42,
        avg_bits: 0x4087f74c46dc4cac,
        max_bits: 0x409ea7bf122d042b,
        via_overflow: 0,
        via_count: 375,
        rounds: 4,
        partitions_solved: 34,
        partitions_reused: 0,
        evaluations: 68,
        gate_accepted: 0,
        gate_rejected: 0,
        released: &[46, 48, 85, 19, 64, 0],
    },
    Expected {
        mode: PipelineMode::Incremental,
        seed: 3,
        avg_bits: 0x408160042c671493,
        max_bits: 0x4087a09bd0b1666a,
        via_overflow: 0,
        via_count: 359,
        rounds: 5,
        partitions_solved: 41,
        partitions_reused: 6,
        evaluations: 82,
        gate_accepted: 12,
        gate_rejected: 4,
        released: &[63, 72, 118, 51, 62, 24],
    },
    Expected {
        mode: PipelineMode::Incremental,
        seed: 42,
        avg_bits: 0x4087f74c46dc4cac,
        max_bits: 0x409ea7bf122d042b,
        via_overflow: 0,
        via_count: 375,
        rounds: 4,
        partitions_solved: 33,
        partitions_reused: 1,
        evaluations: 66,
        gate_accepted: 11,
        gate_rejected: 2,
        released: &[46, 48, 85, 19, 64, 0],
    },
];

fn run(mode: PipelineMode, seed: u64) -> cpla::CplaReport {
    let cfg = SyntheticConfig::small(seed);
    let (mut grid, specs) = cfg.generate().expect("valid config");
    let netlist = route_netlist(&grid, &specs, &RouterConfig::default());
    let mut assignment = initial_assignment(&mut grid, &netlist);
    Cpla::new(CplaConfig {
        critical_ratio: 0.05,
        max_rounds: 8,
        threads: 1,
        mode,
        ..CplaConfig::default()
    })
    .run(&mut grid, &netlist, &mut assignment)
    .expect("snapshot workload is well-formed")
}

#[test]
fn stage_driver_matches_the_pre_refactor_engine_bit_for_bit() {
    for e in SNAPSHOT {
        let r = run(e.mode, e.seed);
        let label = format!("mode={:?} seed={}", e.mode, e.seed);
        assert_eq!(
            r.final_metrics.avg_tcp.to_bits(),
            e.avg_bits,
            "{label}: avg_tcp drifted to {}",
            r.final_metrics.avg_tcp
        );
        assert_eq!(
            r.final_metrics.max_tcp.to_bits(),
            e.max_bits,
            "{label}: max_tcp drifted to {}",
            r.final_metrics.max_tcp
        );
        assert_eq!(r.final_metrics.via_overflow, e.via_overflow, "{label}: OV#");
        assert_eq!(r.final_metrics.via_count, e.via_count, "{label}: via#");
        assert_eq!(r.rounds.len(), e.rounds, "{label}: rounds");
        assert_eq!(
            r.stats.partitions_solved, e.partitions_solved,
            "{label}: partitions_solved"
        );
        assert_eq!(
            r.stats.partitions_reused, e.partitions_reused,
            "{label}: partitions_reused"
        );
        assert_eq!(r.stats.evaluations, e.evaluations, "{label}: evaluations");
        assert_eq!(
            r.stats.gate_accepted, e.gate_accepted,
            "{label}: gate_accepted"
        );
        assert_eq!(
            r.stats.gate_rejected, e.gate_rejected,
            "{label}: gate_rejected"
        );
        assert_eq!(r.released, e.released, "{label}: released set");
    }
}

#[test]
fn legacy_and_incremental_agree_on_the_golden_seed() {
    // Seed 42 is the golden workload where the incremental pipeline's
    // caching and gating land on exactly the legacy answer; the two
    // pipelines must stay interchangeable there across refactors.
    // (Seed 3 intentionally differs — that is the differential case
    // covered by the snapshot above.)
    let legacy = run(PipelineMode::Legacy, 42);
    let incremental = run(PipelineMode::Incremental, 42);
    assert_eq!(
        legacy.final_metrics.avg_tcp.to_bits(),
        incremental.final_metrics.avg_tcp.to_bits(),
        "Avg(Tcp) diverged: {} vs {}",
        legacy.final_metrics.avg_tcp,
        incremental.final_metrics.avg_tcp
    );
    assert_eq!(
        legacy.final_metrics.max_tcp.to_bits(),
        incremental.final_metrics.max_tcp.to_bits()
    );
    assert_eq!(
        legacy.final_metrics.via_count,
        incremental.final_metrics.via_count
    );
    assert_eq!(
        legacy.final_metrics.via_overflow,
        incremental.final_metrics.via_overflow
    );
    assert_eq!(legacy.released, incremental.released);
}
