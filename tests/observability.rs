//! Differential gate for the observability layer: attaching the full
//! instrumentation stack — span recorder, allocation accounting, and
//! both exporters — must not change a single bit of the engine's
//! answer, and must cost only a bounded slice of wall-clock.
//!
//! The four workloads here are the same pinned snapshots as
//! `stage_pipeline_snapshot.rs` (Legacy/Incremental × seeds 3/42), so
//! any observer-induced drift would also be localizable against the
//! recorded golden rows.

use cpla::{Cpla, CplaConfig, CplaReport, PipelineMode};
use flow::Stage;
use ispd::SyntheticConfig;
use net::Assignment;
use route::{initial_assignment, route_netlist, RouterConfig};

// Real allocation counting needs the wrapper installed as the global
// allocator; it stays pass-through until `obs::alloc::enable` flips it
// on for the instrumented runs below.
#[global_allocator]
static ALLOC: obs::CountingAlloc = obs::CountingAlloc::new();

fn config(mode: PipelineMode, threads: usize, alloc_stats: bool) -> CplaConfig {
    CplaConfig {
        critical_ratio: 0.05,
        max_rounds: 8,
        threads,
        mode,
        alloc_stats,
        ..CplaConfig::default()
    }
}

/// Runs one pinned workload without any observer attached.
fn run_plain(mode: PipelineMode, seed: u64, threads: usize) -> (CplaReport, Assignment) {
    let cfg = SyntheticConfig::small(seed);
    let (mut grid, specs) = cfg.generate().expect("valid config");
    let netlist = route_netlist(&grid, &specs, &RouterConfig::default());
    let mut assignment = initial_assignment(&mut grid, &netlist);
    let report = Cpla::new(config(mode, threads, false))
        .run(&mut grid, &netlist, &mut assignment)
        .expect("snapshot workload is well-formed");
    (report, assignment)
}

/// Runs the same workload with the full stack attached: span recorder,
/// scoped allocation accounting, and both exporters rendered.
fn run_instrumented(
    mode: PipelineMode,
    seed: u64,
    threads: usize,
) -> (CplaReport, Assignment, obs::Recorder) {
    let cfg = SyntheticConfig::small(seed);
    let (mut grid, specs) = cfg.generate().expect("valid config");
    let netlist = route_netlist(&grid, &specs, &RouterConfig::default());
    let mut assignment = initial_assignment(&mut grid, &netlist);
    let mut recorder = obs::Recorder::new(format!("{mode:?}-{seed}"));
    let report = Cpla::new(config(mode, threads, true))
        .run_observed(&mut grid, &netlist, &mut assignment, &mut [&mut recorder])
        .expect("snapshot workload is well-formed");
    recorder.finish();
    // Rendering the exporters is part of "fully instrumented": doing it
    // here proves export itself cannot perturb a subsequent comparison.
    let chrome = obs::chrome::export(&[&recorder]);
    assert!(!chrome.is_empty());
    let prom = obs::prom::export(&[&recorder]);
    assert!(!prom.is_empty());
    (report, assignment, recorder)
}

fn assert_identical(label: &str, plain: &(CplaReport, Assignment), obs: &(CplaReport, Assignment)) {
    let (p, pa) = plain;
    let (o, oa) = obs;
    assert_eq!(
        p.final_metrics.avg_tcp.to_bits(),
        o.final_metrics.avg_tcp.to_bits(),
        "{label}: Avg(Tcp) drifted under instrumentation"
    );
    assert_eq!(
        p.final_metrics.max_tcp.to_bits(),
        o.final_metrics.max_tcp.to_bits(),
        "{label}: Max(Tcp) drifted under instrumentation"
    );
    assert_eq!(
        p.initial_metrics.avg_tcp.to_bits(),
        o.initial_metrics.avg_tcp.to_bits(),
        "{label}: initial Avg(Tcp)"
    );
    assert_eq!(p.final_metrics.via_overflow, o.final_metrics.via_overflow);
    assert_eq!(p.final_metrics.via_count, o.final_metrics.via_count);
    assert_eq!(p.released, o.released, "{label}: released set");
    assert_eq!(p.rounds.len(), o.rounds.len(), "{label}: round count");
    assert_eq!(
        p.stats.partitions_solved, o.stats.partitions_solved,
        "{label}: partitions_solved"
    );
    assert_eq!(
        p.stats.partitions_reused, o.stats.partitions_reused,
        "{label}: partitions_reused"
    );
    assert_eq!(
        p.stats.evaluations, o.stats.evaluations,
        "{label}: evaluations"
    );
    assert_eq!(
        p.stats.gate_accepted, o.stats.gate_accepted,
        "{label}: gate_accepted"
    );
    assert_eq!(
        p.stats.gate_rejected, o.stats.gate_rejected,
        "{label}: gate_rejected"
    );
    assert_eq!(pa, oa, "{label}: assignment diverged under instrumentation");
}

#[test]
fn instrumentation_is_bit_identical_on_the_pinned_workloads() {
    for mode in [PipelineMode::Legacy, PipelineMode::Incremental] {
        for seed in [3u64, 42] {
            let label = format!("mode={mode:?} seed={seed}");
            let plain = run_plain(mode, seed, 1);
            let (report, assignment, recorder) = run_instrumented(mode, seed, 1);
            assert_identical(&label, &plain, &(report, assignment));
            // The recorder saw a real run: a run span plus at least one
            // span per pipeline stage.
            let run_span = recorder.run_span().expect("run span closed");
            assert!(run_span.dur_us > 0.0, "{label}: empty run span");
            for stage in Stage::ALL {
                assert!(
                    recorder
                        .spans()
                        .iter()
                        .any(|s| s.kind == obs::SpanKind::Stage && s.stage == Some(stage)),
                    "{label}: no span recorded for stage {}",
                    stage.name()
                );
            }
        }
    }
}

#[test]
fn instrumentation_is_bit_identical_with_work_stealing_threads() {
    // The multi-threaded solve path records leaf spans on the worker
    // threads; that side channel must not alter the merge order of
    // results, and worker attribution must actually appear.
    let label = "mode=Incremental seed=42 threads=4";
    let plain = run_plain(PipelineMode::Incremental, 42, 4);
    let (report, assignment, recorder) = run_instrumented(PipelineMode::Incremental, 42, 4);
    assert_identical(label, &plain, &(report, assignment));
    let leaf_threads: Vec<usize> = recorder
        .spans()
        .iter()
        .filter(|s| s.kind == obs::SpanKind::Leaf && s.stage == Some(Stage::Solve))
        .map(|s| s.thread)
        .collect();
    assert!(
        !leaf_threads.is_empty(),
        "{label}: no solve leaves recorded"
    );
    assert!(
        leaf_threads.iter().any(|&t| t >= 1),
        "{label}: no leaf attributed to a worker thread: {leaf_threads:?}"
    );
}

#[test]
fn exporters_agree_with_the_pipeline_stage_set() {
    let (_, _, recorder) = run_instrumented(PipelineMode::Incremental, 3, 1);
    let chrome = obs::chrome::export(&[&recorder]);
    let parsed = conform::json::parse(&chrome).expect("chrome export is valid JSON");
    let events = parsed
        .get("traceEvents")
        .and_then(conform::json::Value::as_arr)
        .expect("traceEvents array");
    assert!(!events.is_empty());
    let names: Vec<&str> = events
        .iter()
        .filter_map(|e| e.get("name").and_then(conform::json::Value::as_str))
        .collect();
    let prom = obs::prom::export(&[&recorder]);
    for stage in Stage::ALL {
        assert!(
            names.contains(&stage.name()),
            "chrome trace is missing stage `{}`",
            stage.name()
        );
        assert!(
            prom.contains(&format!("stage=\"{}\"", stage.name())),
            "metrics dump is missing stage `{}`",
            stage.name()
        );
    }
    // Allocation accounting was live (the test binary installs the
    // counting allocator), so the per-stage byte counters must be real.
    assert!(
        recorder
            .spans()
            .iter()
            .filter(|s| s.kind == obs::SpanKind::Stage)
            .any(|s| s.alloc_bytes > 0),
        "alloc accounting recorded zero bytes across every stage"
    );
}

#[test]
fn observer_overhead_is_bounded() {
    // Best-of-3 on each side to shake scheduler noise out of a debug
    // binary; the absolute slack keeps a loaded CI box from flaking
    // while still catching a pathological per-leaf or per-alloc cost.
    let mode = PipelineMode::Incremental;
    let seed = 42u64;
    run_plain(mode, seed, 1); // warm caches/allocator once
    let mut plain_best = f64::INFINITY;
    let mut instr_best = f64::INFINITY;
    for _ in 0..3 {
        let t = std::time::Instant::now();
        run_plain(mode, seed, 1);
        plain_best = plain_best.min(t.elapsed().as_secs_f64());
        let t = std::time::Instant::now();
        run_instrumented(mode, seed, 1);
        instr_best = instr_best.min(t.elapsed().as_secs_f64());
    }
    assert!(
        instr_best <= plain_best * 1.05 + 0.05,
        "instrumented best {instr_best:.4}s vs plain best {plain_best:.4}s"
    );
}
