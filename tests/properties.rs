//! Cross-crate property-based tests: randomized pipelines must uphold
//! structural and algorithmic invariants for every seed.

use ispd::SyntheticConfig;
use proptest::prelude::*;
use route::{initial_assignment, route_netlist, RouterConfig};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every generated benchmark routes into valid topologies and a
    /// direction-consistent assignment, whatever the seed.
    #[test]
    fn random_benchmarks_route_validly(seed in 0u64..10_000) {
        let mut config = SyntheticConfig::small(seed);
        config.num_nets = 150;
        let (mut grid, specs) = config.generate().expect("valid config");
        let netlist = route_netlist(&grid, &specs, &RouterConfig::default());
        prop_assert!(netlist.validate(grid.width(), grid.height()).is_ok());
        let assignment = initial_assignment(&mut grid, &netlist);
        prop_assert!(assignment.validate(&netlist, &grid).is_ok());
    }

    /// Elmore timing is monotone in sink capacitance: enlarging one
    /// sink's load can only increase delays on its path.
    #[test]
    fn timing_monotone_in_sink_load(seed in 0u64..1_000) {
        let mut config = SyntheticConfig::small(seed);
        config.num_nets = 30;
        let (mut grid, specs) = config.generate().expect("valid config");
        let netlist = route_netlist(&grid, &specs, &RouterConfig::default());
        let assignment = initial_assignment(&mut grid, &netlist);
        let before = timing::analyze(&grid, &netlist, &assignment);

        // Double every sink load of net 0.
        let mut heavier = netlist.clone();
        let net0 = heavier.net_mut(0);
        // Clone, modify pins via reconstruction.
        let mut pins = net0.pins().to_vec();
        for p in pins.iter_mut().skip(1) {
            p.capacitance *= 2.0;
        }
        let tree = net0.tree().clone();
        let name = net0.name().to_string();
        *net0 = net::Net::new(name, pins, tree);

        let after = timing::analyze(&grid, &heavier, &assignment);
        prop_assert!(
            after.net(0).critical_delay()
                >= before.net(0).critical_delay() - 1e-9
        );
    }

    /// Via counting matches between the per-net enumeration and the
    /// grid-usage bookkeeping: applying then removing any net leaves
    /// usage untouched.
    #[test]
    fn usage_roundtrip_every_net(seed in 0u64..1_000) {
        let mut config = SyntheticConfig::small(seed);
        config.num_nets = 60;
        let (mut grid, specs) = config.generate().expect("valid config");
        let netlist = route_netlist(&grid, &specs, &RouterConfig::default());
        let assignment = initial_assignment(&mut grid, &netlist);
        let snapshot = grid.snapshot_usage();
        for i in 0..netlist.len() {
            net::remove_net_from_grid(
                &mut grid,
                netlist.net(i),
                assignment.net_layers(i),
            );
            net::restore_net_to_grid(
                &mut grid,
                netlist.net(i),
                assignment.net_layers(i),
            );
        }
        prop_assert_eq!(grid.snapshot_usage(), snapshot);
    }

    /// The critical-net selector returns exactly the requested fraction
    /// (rounded, min 1) in criticality order.
    #[test]
    fn selector_counts_and_orders(seed in 0u64..1_000, pct in 1u32..50) {
        let mut config = SyntheticConfig::small(seed);
        config.num_nets = 80;
        let (mut grid, specs) = config.generate().expect("valid config");
        let netlist = route_netlist(&grid, &specs, &RouterConfig::default());
        let assignment = initial_assignment(&mut grid, &netlist);
        let report = timing::analyze(&grid, &netlist, &assignment);
        let ratio = pct as f64 / 100.0;
        let selected = cpla::select_critical_nets(&report, ratio);
        let expect =
            ((report.len() as f64 * ratio).round() as usize).max(1);
        prop_assert_eq!(selected.len(), expect.min(report.len()));
        // Decreasing criticality.
        for w in selected.windows(2) {
            let a = report.net(w[0]).critical_delay();
            let b = report.net(w[1]).critical_delay();
            prop_assert!(a >= b);
        }
    }
}
