//! Cross-crate property tests: randomized pipelines must uphold
//! structural and algorithmic invariants for every seed. Deterministic
//! seed sweeps; enable the off-by-default `proptest` feature to widen
//! the sampled ranges.

use ispd::SyntheticConfig;
use route::{initial_assignment, route_netlist, RouterConfig};

/// Cases per sweep (the cross-crate pipelines are comparatively slow,
/// so the default budget stays small).
fn sweep_cases() -> usize {
    if cfg!(feature = "proptest") {
        48
    } else {
        12
    }
}

/// Every generated benchmark routes into valid topologies and a
/// direction-consistent assignment, whatever the seed.
#[test]
fn random_benchmarks_route_validly() {
    let mut picker = prng::Rng::seed_from_u64(0xa11d);
    for _ in 0..sweep_cases() {
        let seed = picker.range_u64(0, 9_999);
        let mut config = SyntheticConfig::small(seed);
        config.num_nets = 150;
        let (mut grid, specs) = config.generate().expect("valid config");
        let netlist = route_netlist(&grid, &specs, &RouterConfig::default());
        assert!(netlist.validate(grid.width(), grid.height()).is_ok());
        let assignment = initial_assignment(&mut grid, &netlist);
        assert!(assignment.validate(&netlist, &grid).is_ok());
    }
}

/// Elmore timing is monotone in sink capacitance: enlarging one
/// sink's load can only increase delays on its path.
#[test]
fn timing_monotone_in_sink_load() {
    let mut picker = prng::Rng::seed_from_u64(0x7131);
    for _ in 0..sweep_cases() {
        let seed = picker.range_u64(0, 999);
        let mut config = SyntheticConfig::small(seed);
        config.num_nets = 30;
        let (mut grid, specs) = config.generate().expect("valid config");
        let netlist = route_netlist(&grid, &specs, &RouterConfig::default());
        let assignment = initial_assignment(&mut grid, &netlist);
        let before = timing::analyze(&grid, &netlist, &assignment);

        // Double every sink load of net 0.
        let mut heavier = netlist.clone();
        let net0 = heavier.net_mut(0);
        // Clone, modify pins via reconstruction.
        let mut pins = net0.pins().to_vec();
        for p in pins.iter_mut().skip(1) {
            p.capacitance *= 2.0;
        }
        let tree = net0.tree().clone();
        let name = net0.name().to_string();
        *net0 = net::Net::new(name, pins, tree);

        let after = timing::analyze(&grid, &heavier, &assignment);
        assert!(after.net(0).critical_delay() >= before.net(0).critical_delay() - 1e-9);
    }
}

/// Via counting matches between the per-net enumeration and the
/// grid-usage bookkeeping: applying then removing any net leaves
/// usage untouched.
#[test]
fn usage_roundtrip_every_net() {
    let mut picker = prng::Rng::seed_from_u64(0x05a6);
    for _ in 0..sweep_cases() {
        let seed = picker.range_u64(0, 999);
        let mut config = SyntheticConfig::small(seed);
        config.num_nets = 60;
        let (mut grid, specs) = config.generate().expect("valid config");
        let netlist = route_netlist(&grid, &specs, &RouterConfig::default());
        let assignment = initial_assignment(&mut grid, &netlist);
        let snapshot = grid.snapshot_usage();
        for i in 0..netlist.len() {
            net::remove_net_from_grid(&mut grid, netlist.net(i), assignment.net_layers(i));
            net::restore_net_to_grid(&mut grid, netlist.net(i), assignment.net_layers(i));
        }
        assert_eq!(grid.snapshot_usage(), snapshot);
    }
}

/// The critical-net selector returns exactly the requested fraction
/// (rounded, min 1) in criticality order.
#[test]
fn selector_counts_and_orders() {
    let mut picker = prng::Rng::seed_from_u64(0x5e1e);
    for _ in 0..sweep_cases() {
        let seed = picker.range_u64(0, 999);
        let pct = picker.range_u32(1, 49);
        let mut config = SyntheticConfig::small(seed);
        config.num_nets = 80;
        let (mut grid, specs) = config.generate().expect("valid config");
        let netlist = route_netlist(&grid, &specs, &RouterConfig::default());
        let assignment = initial_assignment(&mut grid, &netlist);
        let report = timing::analyze(&grid, &netlist, &assignment);
        let ratio = pct as f64 / 100.0;
        let selected = cpla::select_critical_nets(&report, ratio);
        let expect = ((report.len() as f64 * ratio).round() as usize).max(1);
        assert_eq!(selected.len(), expect.min(report.len()));
        // Decreasing criticality.
        for w in selected.windows(2) {
            let a = report.net(w[0]).critical_delay();
            let b = report.net(w[1]).critical_delay();
            assert!(a >= b);
        }
    }
}
