//! Portfolio integration tests through the umbrella crate: the racing
//! driver over all four `LayerAssigner` backends on real generated
//! designs, checked against the solo runs it is defined in terms of.
//!
//! Everything here goes through `cpla_suite::...` re-export paths on
//! purpose — the umbrella is the one-dependency surface downstream
//! integration tests are told to use, so these tests break if a crate
//! falls out of the re-export list.

use cpla_suite::flow::{Cancel, Greedy, GreedyConfig, LayerAssigner};
use cpla_suite::ispd::SyntheticConfig;
use cpla_suite::lagrange::{Lagrange, LagrangeConfig};
use cpla_suite::portfolio::{priced_score, Baseline, Race};
use cpla_suite::route::{initial_assignment, route_netlist, RouterConfig};
use cpla_suite::{cpla, net, tila};

const RATIO: f64 = 0.05;

fn pipeline(seed: u64) -> (cpla_suite::grid::Grid, net::Netlist, net::Assignment) {
    let config = SyntheticConfig::small(seed);
    let (mut grid, specs) = config.generate().expect("valid config");
    let netlist = route_netlist(&grid, &specs, &RouterConfig::default());
    let assignment = initial_assignment(&mut grid, &netlist);
    (grid, netlist, assignment)
}

fn backends(cancel: &Cancel) -> Vec<Box<dyn LayerAssigner + Send + Sync>> {
    vec![
        Box::new(cpla::Cpla::new(cpla::CplaConfig {
            critical_ratio: RATIO,
            release_neighbors: false,
            ..cpla::CplaConfig::default()
        })),
        Box::new(tila::Tila::new(tila::TilaConfig {
            critical_ratio: RATIO,
            ..tila::TilaConfig::default()
        })),
        Box::new(Lagrange::cancellable(
            LagrangeConfig {
                critical_ratio: RATIO,
                ..LagrangeConfig::default()
            },
            cancel.clone(),
        )),
        Box::new(Greedy::cancellable(
            GreedyConfig {
                critical_ratio: RATIO,
            },
            cancel.clone(),
        )),
    ]
}

fn race() -> Race {
    let cancel = Cancel::new();
    let lanes = backends(&cancel);
    Race::with_cancel(lanes, cancel)
}

#[test]
fn race_lands_the_best_solo_backend_on_generated_designs() {
    for seed in [3u64, 17, 29] {
        let (grid, netlist, assignment) = pipeline(seed);
        let input = Baseline::measure(&grid, &netlist, &assignment);

        // Solo runs, in the race's backend-precedence order; argmin
        // with an earliest-index tie-break is the race's contract.
        let cancel = Cancel::new();
        let mut best: Option<(usize, f64, cpla_suite::grid::Grid, net::Assignment)> = None;
        for (i, backend) in backends(&cancel).iter().enumerate() {
            let mut g = grid.clone();
            let mut a = assignment.clone();
            backend
                .assign(&mut g, &netlist, &mut a)
                .expect("solo backend on a generated design");
            let score = priced_score(&g, &netlist, &a, &input);
            if best
                .as_ref()
                .is_none_or(|(_, s, _, _)| score.total_cmp(s).is_lt())
            {
                best = Some((i, score, g, a));
            }
        }
        let (best_idx, best_score, best_grid, best_assignment) = best.unwrap();

        let mut g = grid.clone();
        let mut a = assignment.clone();
        let outcome = race().run(&mut g, &netlist, &mut a).expect("clean race");
        assert_eq!(
            outcome.winner, best_idx,
            "seed {seed}: race picked lane {} over the best solo lane",
            outcome.winner
        );
        assert_eq!(
            outcome.lanes[outcome.winner].score.to_bits(),
            best_score.to_bits(),
            "seed {seed}: winning score is not the solo score"
        );
        assert_eq!(g, best_grid, "seed {seed}: raced grid != best solo grid");
        assert_eq!(
            a, best_assignment,
            "seed {seed}: raced assignment != best solo assignment"
        );
        a.validate(&netlist, &g).expect("raced result is valid");
    }
}

#[test]
fn race_is_deterministic_across_reruns() {
    let (grid, netlist, assignment) = pipeline(23);
    let run = || {
        let mut g = grid.clone();
        let mut a = assignment.clone();
        let outcome = race().run(&mut g, &netlist, &mut a).expect("clean race");
        (outcome.winner, g, a)
    };
    let first = run();
    for _ in 0..2 {
        let again = run();
        assert_eq!(again.0, first.0, "winner drifted between reruns");
        assert_eq!(again.1, first.1, "grid drifted between reruns");
        assert_eq!(again.2, first.2, "assignment drifted between reruns");
    }
}

#[test]
fn every_lane_reports_through_the_assigner_seam() {
    let (mut grid, netlist, mut assignment) = pipeline(41);
    let outcome = race()
        .run(&mut grid, &netlist, &mut assignment)
        .expect("clean race");
    assert_eq!(
        outcome.lanes.iter().map(|l| l.name).collect::<Vec<_>>(),
        ["cpla", "tila", "lagrange", "greedy"],
        "lane order must be the assembly (precedence) order"
    );
    for lane in &outcome.lanes {
        assert_eq!(lane.report.assigner, lane.name);
        assert!(
            lane.score.is_finite(),
            "{}: priced score must be finite",
            lane.name
        );
        assert!(
            !lane.log.is_empty(),
            "{}: observer log must carry the lane's spans",
            lane.name
        );
    }
    assert!(
        outcome.baseline.avg_tcp > 0.0,
        "baseline comes from the routed input"
    );
}
